//! A minimal JSON *value* model with a parser and a deterministic
//! encoder — the on-disk vocabulary of the knowledge store.
//!
//! `gadt-obs` already owns a JSON validator (the store's corruption
//! detector) and an escaper; this module adds the piece the store needs
//! on top: parsing a validated line back into a value tree, and encoding
//! a value tree to the exact same bytes every time. Objects preserve
//! insertion order (a `Vec` of pairs, not a map), so encoding is
//! deterministic by construction. Std-only, like the rest of the
//! workspace.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, in `i64` range.
    Int(i64),
    /// Any other number.
    Real(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; pairs keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Deterministic compact encoding: no whitespace, object fields in
    /// insertion order, strings escaped with [`gadt_obs::json::escape`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Real(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest round-trip formatting; it
                    // always contains a `.` or an exponent, so the value
                    // parses back as `Real`, never as `Int`.
                    write!(f, "{x:?}")
                } else {
                    // JSON has no NaN/inf literal; encode as null (the
                    // store never produces these).
                    write!(f, "null")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", gadt_obs::json::escape(s)),
            Json::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", gadt_obs::json::escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Convenience constructor for an object literal.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Parses one complete JSON value (with nothing but whitespace around
/// it). Returns `None` on any syntax error — the store treats malformed
/// lines as corruption, so errors carry no detail here; run the line
/// through [`gadt_obs::json::validate`] for an offset and message.
pub fn parse(input: &str) -> Option<Json> {
    let mut p = Parser {
        b: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return None;
    }
    Some(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Option<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Json::Str),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Option<Json> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(v)
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<Json> {
        if !self.eat(b'{') {
            return None;
        }
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Some(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return None;
            }
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return if self.eat(b'}') {
                Some(Json::Object(pairs))
            } else {
                None
            };
        }
    }

    fn array(&mut self) -> Option<Json> {
        if !self.eat(b'[') {
            return None;
        }
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Some(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return if self.eat(b']') {
                Some(Json::Array(items))
            } else {
                None
            };
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            self.pos += 1;
                            let hex = self.b.get(self.pos..self.pos + 4)?;
                            let hex = std::str::from_utf8(hex).ok()?;
                            let cp = u32::from_str_radix(hex, 16).ok()?;
                            // Surrogates would need pairing; the store's
                            // escaper only emits \u for control chars, so
                            // reject anything that is not a scalar value.
                            out.push(char::from_u32(cp)?);
                            self.pos += 3; // the loop's +1 covers the rest
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                c if c < 0x20 => return None,
                _ => {
                    // Multi-byte UTF-8: advance over the whole character.
                    let rest = std::str::from_utf8(&self.b[self.pos..]).ok()?;
                    let ch = rest.chars().next()?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        self.eat(b'-');
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return None;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.eat(b'.') {
            fractional = true;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return None;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return None;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).ok()?;
        if !fractional {
            if let Ok(n) = text.parse::<i64>() {
                return Some(Json::Int(n));
            }
        }
        text.parse::<f64>().ok().map(Json::Real)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null"), Some(Json::Null));
        assert_eq!(parse(" true "), Some(Json::Bool(true)));
        assert_eq!(parse("-42"), Some(Json::Int(-42)));
        assert_eq!(parse("2.5"), Some(Json::Real(2.5)));
        assert_eq!(parse("1e3"), Some(Json::Real(1000.0)));
        assert_eq!(parse(r#""a\nb""#), Some(Json::Str("a\nb".into())));
        assert_eq!(
            parse(r#"[1,"x",{"k":false}]"#),
            Some(Json::Array(vec![
                Json::Int(1),
                Json::Str("x".into()),
                Json::Object(vec![("k".into(), Json::Bool(false))]),
            ]))
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "\"open", "01x", "{} junk", "nul"] {
            assert_eq!(parse(bad), None, "{bad}");
        }
    }

    #[test]
    fn encoding_round_trips() {
        let v = obj(vec![
            ("k", Json::Str("report".into())),
            ("q", Json::Str("q(In a: 5)?\n\"x\"\\".into())),
            ("vals", Json::Array(vec![Json::Int(7), Json::Real(0.5)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        let line = v.to_string();
        assert!(gadt_obs::json::validate(&line).is_ok(), "{line}");
        assert_eq!(parse(&line), Some(v.clone()));
        // Encoding is a fixed point: parse → encode reproduces the bytes.
        assert_eq!(parse(&line).unwrap().to_string(), line);
    }

    #[test]
    fn unicode_strings_round_trip() {
        let v = Json::Str("π ≈ 3.14159 — ok".into());
        assert_eq!(parse(&v.to_string()), Some(v));
        assert_eq!(parse(r#""Aé""#), Some(Json::Str("Aé".into())));
    }

    #[test]
    fn real_encoding_is_round_trip_exact() {
        for x in [0.1, 1.0 / 3.0, -2.75, 1e-9, 12345.6789] {
            let enc = Json::Real(x).to_string();
            assert_eq!(parse(&enc), Some(Json::Real(x)), "{enc}");
        }
        // Integral reals stay reals (the `.0` keeps the tag).
        assert_eq!(parse(&Json::Real(3.0).to_string()), Some(Json::Real(3.0)));
    }
}
