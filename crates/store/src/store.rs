//! The crash-safe knowledge store: an append-only JSON-lines write-ahead
//! log plus an atomically-replaced snapshot.
//!
//! # On-disk layout
//!
//! A store is a directory with two files:
//!
//! * `snapshot.jsonl` — the compacted state, rewritten wholesale by
//!   [`KnowledgeStore::compact`] via write-to-temp + rename (atomic on
//!   POSIX), so it is either the old snapshot or the new one, never a
//!   half-written hybrid;
//! * `wal.jsonl` — the write-ahead log; every new piece of knowledge is
//!   appended here as one [`Record`] line.
//!
//! Both files start with a [`Record::Header`] line carrying the format
//! name and version.
//!
//! # Recovery rules
//!
//! A crash can leave the WAL with a truncated last line or arbitrary
//! corrupt bytes. On open, each file is replayed line by line; a line
//! survives only if it (1) ends in a newline, (2) passes the
//! [`gadt_obs::json::validate`] JSON validator, and (3) decodes into a
//! known [`Record`]. The first line that fails any check ends the
//! *valid prefix*: everything before it is recovered, everything from
//! it on is dropped (WAL semantics — later lines may depend on earlier
//! ones, so a hole cannot be skipped). The WAL is then truncated back
//! to its valid prefix, so the next append continues from a clean file.
//! Recovery never panics and reports what it kept and dropped in a
//! [`RecoveryReport`].
//!
//! # Determinism
//!
//! Appends are idempotent (re-recording knowledge the store already
//! holds writes nothing) and the encoder is deterministic, so identical
//! sessions produce byte-identical stores — including across executor
//! thread counts, provided records are appended in batch order (see
//! `gadt_exec::BatchExecutor::run_with_sink`, the serialized appender
//! path used by `gadt_tgen::cases::run_cases_batch_persisted`).

use crate::record::{Record, StoredAnswer, StoredReport, VERSION};
use crate::Json;
use gadt_pascal::value::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// What recovery kept and dropped when the store was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Data records recovered from the snapshot file.
    pub snapshot_records: usize,
    /// Data records recovered from the WAL.
    pub wal_records: usize,
    /// Lines (complete or partial) dropped as corrupt or truncated.
    pub dropped_lines: usize,
    /// Bytes discarded with those lines.
    pub dropped_bytes: usize,
}

impl RecoveryReport {
    /// Total data records recovered across both files.
    pub fn recovered_lines(&self) -> usize {
        self.snapshot_records + self.wal_records
    }

    /// Whether anything had to be dropped.
    pub fn clean(&self) -> bool {
        self.dropped_lines == 0
    }
}

/// The merged in-memory view of everything on disk.
#[derive(Debug, Clone, Default, PartialEq)]
struct StoreState {
    /// unit → frame code → reports in first-seen order, deduped on
    /// inputs (latest verdict wins) — mirroring `TestDb::add`.
    reports: BTreeMap<String, BTreeMap<String, Vec<StoredReport>>>,
    /// answer key → (answer, source).
    answers: BTreeMap<String, (StoredAnswer, String)>,
    /// campaign key → payload.
    verdicts: BTreeMap<String, Json>,
}

impl StoreState {
    /// Applies one data record; returns whether the state changed (an
    /// unchanged state means the record is already-known knowledge and
    /// need not be written again).
    fn apply(&mut self, record: Record) -> bool {
        match record {
            Record::Header { .. } => false,
            Record::Report(mut r) => {
                r.unit = r.unit.to_ascii_lowercase();
                let slot = self
                    .reports
                    .entry(r.unit.clone())
                    .or_default()
                    .entry(r.code.clone())
                    .or_default();
                match slot.iter_mut().find(|e| e.inputs == r.inputs) {
                    Some(existing) if *existing == r => false,
                    Some(existing) => {
                        *existing = r;
                        true
                    }
                    None => {
                        slot.push(r);
                        true
                    }
                }
            }
            Record::Answer {
                key,
                answer,
                source,
            } => {
                let entry = (answer, source);
                if self.answers.get(&key) == Some(&entry) {
                    false
                } else {
                    self.answers.insert(key, entry);
                    true
                }
            }
            Record::Verdict { key, payload } => {
                if self.verdicts.get(&key) == Some(&payload) {
                    false
                } else {
                    self.verdicts.insert(key, payload);
                    true
                }
            }
        }
    }

    /// The deterministic serialization compaction writes: every record
    /// in sorted-key order (reports by unit then code then insertion
    /// order, answers and verdicts by key).
    fn export(&self) -> Vec<Record> {
        let mut out = Vec::new();
        for codes in self.reports.values() {
            for reports in codes.values() {
                out.extend(reports.iter().cloned().map(Record::Report));
            }
        }
        for (key, (answer, source)) in &self.answers {
            out.push(Record::Answer {
                key: key.clone(),
                answer: answer.clone(),
                source: source.clone(),
            });
        }
        for (key, payload) in &self.verdicts {
            out.push(Record::Verdict {
                key: key.clone(),
                payload: payload.clone(),
            });
        }
        out
    }
}

/// The valid prefix of one store file.
struct RecoveredFile {
    records: Vec<Record>,
    valid_len: u64,
    dropped_lines: usize,
    dropped_bytes: usize,
}

/// Replays `bytes` under the recovery rules (module docs). `None` from
/// a header check means a *newer* format version — surfaced as an error
/// by the caller rather than silently dropped.
fn recover(bytes: &[u8]) -> io::Result<RecoveredFile> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    // Stops at the first line with no terminating newline — an
    // incomplete (or empty) tail.
    while let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') {
        let line_end = pos + nl;
        let Ok(line) = std::str::from_utf8(&bytes[pos..line_end]) else {
            break;
        };
        if gadt_obs::json::validate(line).is_err() {
            break;
        }
        let Some(record) = Record::decode(line) else {
            break;
        };
        if records.is_empty() {
            let Record::Header { version } = record else {
                break; // first line must be the header
            };
            if version > VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "store file written by a newer build (format v{version}, this build reads up to v{VERSION})"
                    ),
                ));
            }
        }
        records.push(record);
        pos = line_end + 1;
    }
    let dropped = &bytes[pos..];
    let dropped_lines = if dropped.is_empty() {
        0
    } else {
        dropped.iter().filter(|&&b| b == b'\n').count()
            + usize::from(*dropped.last().unwrap() != b'\n')
    };
    Ok(RecoveredFile {
        records,
        valid_len: pos as u64,
        dropped_lines,
        dropped_bytes: dropped.len(),
    })
}

/// A persistent, crash-safe store of debugging knowledge. See the
/// module docs for the format; see [`crate::record`] for what is
/// stored.
///
/// # Examples
/// ```
/// # fn main() -> std::io::Result<()> {
/// use gadt_store::{KnowledgeStore, StoredAnswer, TempDir};
/// use gadt_pascal::value::Value;
///
/// let dir = TempDir::new("gadt-store-doc");
/// {
///     let mut store = KnowledgeStore::open(dir.path())?;
///     store.record_answer(
///         "arrsum",
///         &[Value::Int(2)],
///         StoredAnswer::Correct,
///         "test database",
///     )?;
///     store.sync()?;
/// }
/// // A later session finds the answer on disk.
/// let mut store = KnowledgeStore::open(dir.path())?;
/// assert_eq!(
///     store.lookup_answer("ArrSum", &[Value::Int(2)]),
///     Some(StoredAnswer::Correct),
/// );
/// assert_eq!(store.answer_hits(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KnowledgeStore {
    dir: PathBuf,
    state: StoreState,
    wal: File,
    /// Data records currently sitting in the WAL (snapshot excluded).
    wal_records: usize,
    recovery: RecoveryReport,
    answer_hits: u64,
    answer_misses: u64,
    verdict_hits: u64,
    verdict_misses: u64,
}

impl KnowledgeStore {
    /// Opens (or creates) the store in `dir`, recovering the valid
    /// prefix of both files and truncating the WAL's corrupt tail so
    /// subsequent appends extend a clean file.
    ///
    /// # Errors
    /// I/O errors, plus [`io::ErrorKind::InvalidData`] when a file was
    /// written by a newer format version than this build reads.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<KnowledgeStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut state = StoreState::default();
        let mut recovery = RecoveryReport::default();

        // Snapshot first: it is the compacted past the WAL extends.
        let snap = match std::fs::read(dir.join(SNAPSHOT)) {
            Ok(bytes) => Some(recover(&bytes)?),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        if let Some(snap) = snap {
            recovery.dropped_lines += snap.dropped_lines;
            recovery.dropped_bytes += snap.dropped_bytes;
            for record in snap.records {
                state.apply(record);
                recovery.snapshot_records += 1;
            }
            recovery.snapshot_records = recovery.snapshot_records.saturating_sub(1);
            // header
        }

        // Then the WAL, self-healing its tail.
        let mut wal = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(WAL))?;
        let mut bytes = Vec::new();
        wal.read_to_end(&mut bytes)?;
        let replay = recover(&bytes)?;
        let mut wal_records = 0usize;
        for record in replay.records {
            if !matches!(record, Record::Header { .. }) {
                wal_records += 1;
            }
            state.apply(record);
        }
        recovery.wal_records = wal_records;
        recovery.dropped_lines += replay.dropped_lines;
        recovery.dropped_bytes += replay.dropped_bytes;
        if replay.valid_len != bytes.len() as u64 {
            wal.set_len(replay.valid_len)?;
        }
        wal.seek(SeekFrom::Start(replay.valid_len))?;
        if replay.valid_len == 0 {
            let header = Record::Header { version: VERSION }.encode();
            wal.write_all(header.as_bytes())?;
            wal.write_all(b"\n")?;
        }

        Ok(KnowledgeStore {
            dir,
            state,
            wal,
            wal_records,
            recovery,
            answer_hits: 0,
            answer_misses: 0,
            verdict_hits: 0,
            verdict_misses: 0,
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What recovery kept and dropped when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    fn append(&mut self, record: Record) -> io::Result<bool> {
        // Idempotence: probe on a clone first so a failed write never
        // leaves memory ahead of disk.
        let mut probe = self.state.clone();
        if !probe.apply(record.clone()) {
            return Ok(false);
        }
        let line = record.encode();
        self.wal.write_all(line.as_bytes())?;
        self.wal.write_all(b"\n")?;
        self.state = probe;
        self.wal_records += 1;
        Ok(true)
    }

    /// Appends one test report. Returns `false` when the store already
    /// holds it (nothing written). A report with the same unit, frame
    /// code and inputs but a different verdict/outputs *replaces* the
    /// old knowledge (latest wins), mirroring `TestDb::add`.
    ///
    /// # Errors
    /// WAL write errors.
    pub fn append_report(&mut self, report: StoredReport) -> io::Result<bool> {
        self.append(Record::Report(report))
    }

    /// Records an oracle answer for the `(unit, In-values)` fingerprint.
    /// Returns `false` when the identical answer is already stored.
    ///
    /// # Errors
    /// WAL write errors.
    pub fn record_answer(
        &mut self,
        unit: &str,
        ins: &[Value],
        answer: StoredAnswer,
        source: &str,
    ) -> io::Result<bool> {
        self.append(Record::Answer {
            key: crate::record::answer_key(unit, ins),
            answer,
            source: source.to_string(),
        })
    }

    /// Records a campaign golden-reference verdict under `key`.
    /// Returns `false` when the identical payload is already stored.
    ///
    /// # Errors
    /// WAL write errors.
    pub fn record_verdict(&mut self, key: &str, payload: Json) -> io::Result<bool> {
        self.append(Record::Verdict {
            key: key.to_string(),
            payload,
        })
    }

    /// Looks up a stored answer for a `(unit, In-values)` fingerprint,
    /// counting a hit or miss.
    pub fn lookup_answer(&mut self, unit: &str, ins: &[Value]) -> Option<StoredAnswer> {
        let key = crate::record::answer_key(unit, ins);
        match self.state.answers.get(&key) {
            Some((answer, _)) => {
                self.answer_hits += 1;
                Some(answer.clone())
            }
            None => {
                self.answer_misses += 1;
                None
            }
        }
    }

    /// Checks for a stored answer *without* counting a hit or miss —
    /// the read-only probe traversal strategies use to weigh nodes
    /// ("would asking this be free?") without pretending a question was
    /// asked. [`KnowledgeStore::lookup_answer`] is the counting variant
    /// for answers actually served into a session.
    pub fn peek_answer(&self, unit: &str, ins: &[Value]) -> Option<StoredAnswer> {
        let key = crate::record::answer_key(unit, ins);
        self.state.answers.get(&key).map(|(a, _)| a.clone())
    }

    /// The source that produced a stored answer, if present (does not
    /// count as a hit or miss).
    pub fn answer_source(&self, unit: &str, ins: &[Value]) -> Option<&str> {
        let key = crate::record::answer_key(unit, ins);
        self.state.answers.get(&key).map(|(_, s)| s.as_str())
    }

    /// Looks up a campaign verdict, counting a hit or miss.
    pub fn lookup_verdict(&mut self, key: &str) -> Option<Json> {
        match self.state.verdicts.get(key) {
            Some(payload) => {
                self.verdict_hits += 1;
                Some(payload.clone())
            }
            None => {
                self.verdict_misses += 1;
                None
            }
        }
    }

    /// All stored reports for a unit, in frame-code order then
    /// insertion order — the order `TestDb::load_from` rebuilds in.
    pub fn unit_reports(&self, unit: &str) -> impl Iterator<Item = &StoredReport> {
        self.state
            .reports
            .get(&unit.to_ascii_lowercase())
            .into_iter()
            .flat_map(|codes| codes.values().flatten())
    }

    /// Units with at least one stored report.
    pub fn units(&self) -> impl Iterator<Item = &str> {
        self.state.reports.keys().map(String::as_str)
    }

    /// Stored report count (all units).
    pub fn reports_len(&self) -> usize {
        self.state
            .reports
            .values()
            .flat_map(BTreeMap::values)
            .map(Vec::len)
            .sum()
    }

    /// Stored answer count.
    pub fn answers_len(&self) -> usize {
        self.state.answers.len()
    }

    /// Stored verdict count.
    pub fn verdicts_len(&self) -> usize {
        self.state.verdicts.len()
    }

    /// Whether the store holds no knowledge at all.
    pub fn is_empty(&self) -> bool {
        self.reports_len() == 0 && self.answers_len() == 0 && self.verdicts_len() == 0
    }

    /// Answer lookups that found stored knowledge.
    pub fn answer_hits(&self) -> u64 {
        self.answer_hits
    }

    /// Answer lookups that found nothing.
    pub fn answer_misses(&self) -> u64 {
        self.answer_misses
    }

    /// Verdict lookups that found stored knowledge.
    pub fn verdict_hits(&self) -> u64 {
        self.verdict_hits
    }

    /// Verdict lookups that found nothing.
    pub fn verdict_misses(&self) -> u64 {
        self.verdict_misses
    }

    /// Data records currently in the WAL (a compaction resets this).
    pub fn wal_records(&self) -> usize {
        self.wal_records
    }

    /// The deterministic full-state serialization (what a compaction
    /// writes, minus the header) — handy for state-equality assertions.
    pub fn export_lines(&self) -> Vec<String> {
        self.state.export().iter().map(Record::encode).collect()
    }

    /// Flushes the WAL to stable storage (`fsync`).
    ///
    /// # Errors
    /// I/O errors from the sync.
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync_all()
    }

    /// Folds the WAL into the snapshot: writes the full state to a
    /// temporary file, fsyncs it, atomically renames it over
    /// `snapshot.jsonl`, then resets the WAL to a bare header. A crash
    /// between the rename and the reset only leaves duplicate records in
    /// the WAL, which replay idempotently on the next open.
    ///
    /// # Errors
    /// I/O errors from writing, syncing, or renaming.
    pub fn compact(&mut self) -> io::Result<()> {
        let tmp = self.dir.join(SNAPSHOT_TMP);
        {
            let mut f = File::create(&tmp)?;
            let mut buf = String::new();
            buf.push_str(&Record::Header { version: VERSION }.encode());
            buf.push('\n');
            for record in self.state.export() {
                buf.push_str(&record.encode());
                buf.push('\n');
            }
            f.write_all(buf.as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join(SNAPSHOT))?;
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        let header = Record::Header { version: VERSION }.encode();
        self.wal.write_all(header.as_bytes())?;
        self.wal.write_all(b"\n")?;
        self.wal.sync_all()?;
        self.wal_records = 0;
        Ok(())
    }

    /// A fingerprint of the on-disk bytes (snapshot then WAL), FNV-1a —
    /// byte-identical stores have equal fingerprints. Flush first
    /// ([`KnowledgeStore::sync`]) if appends are in flight.
    ///
    /// # Errors
    /// I/O errors reading the files back.
    pub fn disk_fingerprint(&self) -> io::Result<String> {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
        };
        for name in [SNAPSHOT, WAL] {
            match std::fs::read(self.dir.join(name)) {
                Ok(bytes) => {
                    eat(&(bytes.len() as u64).to_le_bytes());
                    eat(&bytes);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => eat(&[0xFF]),
                Err(e) => return Err(e),
            }
        }
        Ok(format!("{hash:016x}"))
    }

    /// Wraps the store for shared use across threads (the serialized
    /// appender handle the batch runners take).
    pub fn into_shared(self) -> SharedStore {
        Arc::new(Mutex::new(self))
    }
}

/// A store behind a mutex: the one serialized appender that concurrent
/// batch workers funnel through.
pub type SharedStore = Arc<Mutex<KnowledgeStore>>;

const SNAPSHOT: &str = "snapshot.jsonl";
const SNAPSHOT_TMP: &str = "snapshot.jsonl.tmp";
const WAL: &str = "wal.jsonl";

impl Drop for KnowledgeStore {
    fn drop(&mut self) {
        let _ = self.wal.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;
    use crate::TempDir;

    fn report(code: &str, n: i64, passed: bool) -> StoredReport {
        StoredReport {
            unit: "arrsum".into(),
            code: code.into(),
            inputs: vec![Value::Int(n)],
            outputs: vec![Value::Int(n * 2)],
            passed,
        }
    }

    #[test]
    fn fresh_store_is_empty_with_header_only_wal() {
        let dir = TempDir::new("store-fresh");
        let store = KnowledgeStore::open(dir.path()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.recovery().recovered_lines(), 0);
        let wal = std::fs::read_to_string(dir.path().join(WAL)).unwrap();
        assert_eq!(wal.lines().count(), 1);
        assert!(wal.starts_with("{\"k\":\"header\""), "{wal}");
    }

    #[test]
    fn appends_persist_across_reopen() {
        let dir = TempDir::new("store-reopen");
        {
            let mut store = KnowledgeStore::open(dir.path()).unwrap();
            assert!(store
                .append_report(report("two.positive.small", 2, true))
                .unwrap());
            assert!(store
                .record_answer("p", &[Value::Int(5)], StoredAnswer::Correct, "user")
                .unwrap());
            assert!(store
                .record_verdict("m:1", obj(vec![("s", Json::Str("ok".into()))]))
                .unwrap());
            store.sync().unwrap();
        }
        let mut store = KnowledgeStore::open(dir.path()).unwrap();
        assert_eq!(store.reports_len(), 1);
        assert_eq!(store.recovery().wal_records, 3);
        assert!(store.recovery().clean());
        assert_eq!(
            store.lookup_answer("P", &[Value::Int(5)]),
            Some(StoredAnswer::Correct)
        );
        assert_eq!(store.answer_source("p", &[Value::Int(5)]), Some("user"));
        assert!(store.lookup_verdict("m:1").is_some());
        assert_eq!(store.lookup_verdict("m:2"), None);
        assert_eq!((store.verdict_hits(), store.verdict_misses()), (1, 1));
    }

    #[test]
    fn appends_are_idempotent_and_latest_verdict_wins() {
        let dir = TempDir::new("store-idem");
        let mut store = KnowledgeStore::open(dir.path()).unwrap();
        assert!(store.append_report(report("a", 1, true)).unwrap());
        // Identical knowledge: nothing written.
        assert!(!store.append_report(report("a", 1, true)).unwrap());
        assert_eq!(store.wal_records(), 1);
        // Same key, new verdict: written, replaces.
        assert!(store.append_report(report("a", 1, false)).unwrap());
        assert_eq!(store.reports_len(), 1);
        assert!(!store.unit_reports("arrsum").next().unwrap().passed);
        // Different inputs under the same code: a second report.
        assert!(store.append_report(report("a", 2, true)).unwrap());
        assert_eq!(store.reports_len(), 2);
    }

    #[test]
    fn compaction_moves_state_into_the_snapshot() {
        let dir = TempDir::new("store-compact");
        let mut store = KnowledgeStore::open(dir.path()).unwrap();
        for n in 0..5 {
            store.append_report(report("c", n, true)).unwrap();
        }
        store
            .record_answer(
                "q",
                &[],
                StoredAnswer::Incorrect {
                    wrong_output: Some(0),
                },
                "assertions",
            )
            .unwrap();
        let before = store.export_lines();
        store.compact().unwrap();
        assert_eq!(store.wal_records(), 0);
        let wal = std::fs::read_to_string(dir.path().join(WAL)).unwrap();
        assert_eq!(wal.lines().count(), 1, "WAL reset to header: {wal}");
        drop(store);
        let store = KnowledgeStore::open(dir.path()).unwrap();
        assert_eq!(store.export_lines(), before);
        assert_eq!(store.recovery().snapshot_records, 6);
    }

    #[test]
    fn corrupt_wal_tail_is_dropped_and_healed() {
        let dir = TempDir::new("store-heal");
        {
            let mut store = KnowledgeStore::open(dir.path()).unwrap();
            store.append_report(report("a", 1, true)).unwrap();
            store.append_report(report("b", 2, true)).unwrap();
        }
        // Simulate a crash mid-append: chop the last line in half.
        let wal_path = dir.path().join(WAL);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 10]).unwrap();

        let mut store = KnowledgeStore::open(dir.path()).unwrap();
        assert_eq!(store.reports_len(), 1);
        assert_eq!(store.recovery().wal_records, 1);
        assert_eq!(store.recovery().dropped_lines, 1);
        assert!(store.recovery().dropped_bytes > 0);
        // The tail was truncated away; appending continues cleanly.
        store.append_report(report("c", 3, true)).unwrap();
        drop(store);
        let store = KnowledgeStore::open(dir.path()).unwrap();
        assert!(store.recovery().clean());
        assert_eq!(store.reports_len(), 2);
    }

    #[test]
    fn newer_format_version_is_refused_not_dropped() {
        let dir = TempDir::new("store-vers");
        std::fs::write(
            dir.path().join(WAL),
            "{\"k\":\"header\",\"format\":\"gadt-store\",\"version\":99}\n",
        )
        .unwrap();
        let err = KnowledgeStore::open(dir.path()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("newer build"), "{err}");
    }

    #[test]
    fn foreign_header_counts_as_corruption() {
        let dir = TempDir::new("store-foreign");
        std::fs::write(
            dir.path().join(WAL),
            "{\"hello\":\"world\"}\n{\"k\":\"x\"}\n",
        )
        .unwrap();
        let store = KnowledgeStore::open(dir.path()).unwrap();
        assert!(store.is_empty());
        assert_eq!(store.recovery().dropped_lines, 2);
        // The file was reset to a valid header.
        drop(store);
        let store = KnowledgeStore::open(dir.path()).unwrap();
        assert!(store.recovery().clean());
    }

    #[test]
    fn disk_fingerprint_tracks_bytes() {
        let dir = TempDir::new("store-fp");
        let mut store = KnowledgeStore::open(dir.path()).unwrap();
        let empty = store.disk_fingerprint().unwrap();
        store.append_report(report("a", 1, true)).unwrap();
        store.sync().unwrap();
        let one = store.disk_fingerprint().unwrap();
        assert_ne!(empty, one);
        // Idempotent re-append leaves the bytes alone.
        store.append_report(report("a", 1, true)).unwrap();
        store.sync().unwrap();
        assert_eq!(store.disk_fingerprint().unwrap(), one);
    }
}
