//! A tiny RAII temporary directory for tests and doctests.
//!
//! The workspace is std-only (no `tempfile` crate), and the store's
//! crash/corruption suite needs throwaway directories that are
//! guaranteed to vanish — the CI `store` tier asserts nothing leaks
//! outside its sandbox. Directories are created under
//! [`std::env::temp_dir`] (which honours `TMPDIR`) and removed on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A directory under the system temp root, removed (recursively) when
/// dropped.
///
/// # Examples
/// ```
/// use gadt_store::TempDir;
/// let dir = TempDir::new("doc-example");
/// std::fs::write(dir.path().join("x"), b"hi").unwrap();
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh uniquely-named directory, tagged for legibility.
    ///
    /// # Panics
    /// When no unique directory can be created — this is a test
    /// utility, so failure is loud rather than recoverable.
    pub fn new(tag: &str) -> TempDir {
        let root = std::env::temp_dir();
        let pid = std::process::id();
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = root.join(format!("gadt-{tag}-{pid}-{n}"));
            match std::fs::create_dir(&path) {
                Ok(()) => return TempDir { path },
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => panic!("cannot create temp dir {}: {e}", path.display()),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_unique_dirs_and_cleans_up() {
        let a = TempDir::new("t");
        let b = TempDir::new("t");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists());
        assert!(b.path().is_dir());
    }
}
