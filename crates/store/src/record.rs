//! The store's record vocabulary and its JSON codec.
//!
//! Every line of the WAL and of a snapshot is one [`Record`], encoded as
//! a single-line JSON object with a `"k"` discriminator. Three kinds of
//! knowledge persist (§2/§5.3 of the paper: the test database plus every
//! expensive oracle answer):
//!
//! * [`Record::Report`] — one T-GEN test report (frame code, inputs,
//!   outputs, verdict) for a unit;
//! * [`Record::Answer`] — one assertion/oracle answer, keyed by the
//!   `(unit, In-values)` fingerprint of the judged execution-tree node;
//! * [`Record::Verdict`] — one campaign golden-reference verdict, keyed
//!   by a campaign fingerprint, with an opaque JSON payload (the mutation
//!   harness owns the payload schema, keeping this crate free of a
//!   `gadt-mutate` dependency).
//!
//! The codec is deterministic: encoding a record always yields the same
//! bytes, and `decode(encode(r)) == r` for every record (pinned by the
//! round-trip tests below and `tests/properties.rs`).

use crate::json::{obj, Json};
use gadt_pascal::value::{ArrayValue, Value};

/// On-disk format name, first line of every store file.
pub const FORMAT: &str = "gadt-store";

/// Current on-disk format version. Readers accept any version `<=`
/// this; a higher version on disk means the file was written by a newer
/// build and is refused (forward migration happens on the writer side).
pub const VERSION: u32 = 1;

/// A stored test report — the persistent twin of
/// `gadt_tgen::cases::TestReport`, plus the unit it belongs to (the
/// in-memory `TestDb` carries the unit once per database; the flat WAL
/// carries it per record).
#[derive(Debug, Clone, PartialEq)]
pub struct StoredReport {
    /// The unit under test (stored lowercase).
    pub unit: String,
    /// The frame's coded form.
    pub code: String,
    /// The inputs used.
    pub inputs: Vec<Value>,
    /// Output values.
    pub outputs: Vec<Value>,
    /// The verdict.
    pub passed: bool,
}

/// A stored oracle answer: the definite verdicts of
/// `gadt::oracle::Answer`, minus `DontKnow` (which is never knowledge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredAnswer {
    /// The unit behaved as intended.
    Correct,
    /// The unit misbehaved; optionally which output was wrong (the
    /// error indication that activates slicing).
    Incorrect {
        /// Index of the wrong output value, when known.
        wrong_output: Option<usize>,
    },
}

/// One WAL/snapshot line.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// File header: format name + version. Always the first line.
    Header {
        /// Format version the file was written with.
        version: u32,
    },
    /// A test report.
    Report(StoredReport),
    /// An oracle answer for a `(unit, In-values)` fingerprint.
    Answer {
        /// The fingerprint key (see [`answer_key`]).
        key: String,
        /// The answer.
        answer: StoredAnswer,
        /// Which knowledge source produced it (`"test database"`,
        /// `"simulated user (reference implementation)"`, …).
        source: String,
    },
    /// A campaign golden-reference verdict with an opaque payload.
    Verdict {
        /// The campaign fingerprint key.
        key: String,
        /// Harness-defined payload (e.g. an encoded `MutantStatus`).
        payload: Json,
    },
}

/// The `(unit, In-values)` fingerprint an oracle answer is keyed by.
/// Unit names compare case-insensitively in the debugger, so the key
/// lowercases; values render through the same deterministic encoding
/// the store writes to disk.
pub fn answer_key(unit: &str, ins: &[Value]) -> String {
    let mut key = unit.to_ascii_lowercase();
    key.push('(');
    for (i, v) in ins.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(&value_to_json(v).to_string());
    }
    key.push(')');
    key
}

/// Encodes a runtime [`Value`] as JSON. The encoding is tagged just
/// enough to be unambiguous on the way back: integers, booleans and
/// strings map to their JSON natives; reals carry a `.0`/exponent so
/// they never collapse into integers; chars and arrays wrap in
/// single-field objects.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(n) => Json::Int(*n),
        Value::Real(x) => Json::Real(*x),
        Value::Bool(b) => Json::Bool(*b),
        Value::Char(c) => obj(vec![("char", Json::Str(c.to_string()))]),
        Value::Str(s) => Json::Str(s.clone()),
        Value::Array(a) => obj(vec![
            ("lo", Json::Int(a.lo)),
            (
                "elems",
                Json::Array(a.elems.iter().map(value_to_json).collect()),
            ),
        ]),
    }
}

/// Decodes a [`Value`] from its JSON encoding.
pub fn value_from_json(j: &Json) -> Option<Value> {
    match j {
        Json::Int(n) => Some(Value::Int(*n)),
        Json::Real(x) => Some(Value::Real(*x)),
        Json::Bool(b) => Some(Value::Bool(*b)),
        Json::Str(s) => Some(Value::Str(s.clone())),
        Json::Object(_) => {
            if let Some(c) = j.get("char") {
                let s = c.as_str()?;
                let mut chars = s.chars();
                let ch = chars.next()?;
                if chars.next().is_some() {
                    return None;
                }
                return Some(Value::Char(ch));
            }
            let lo = j.get("lo")?.as_int()?;
            let elems = j
                .get("elems")?
                .as_array()?
                .iter()
                .map(value_from_json)
                .collect::<Option<Vec<_>>>()?;
            Some(Value::Array(ArrayValue { lo, elems }))
        }
        _ => None,
    }
}

fn answer_to_json(a: &StoredAnswer) -> Json {
    match a {
        StoredAnswer::Correct => Json::Str("correct".into()),
        StoredAnswer::Incorrect { wrong_output } => obj(vec![(
            "incorrect",
            match wrong_output {
                Some(k) => Json::Int(*k as i64),
                None => Json::Null,
            },
        )]),
    }
}

fn answer_from_json(j: &Json) -> Option<StoredAnswer> {
    match j {
        Json::Str(s) if s == "correct" => Some(StoredAnswer::Correct),
        Json::Object(_) => match j.get("incorrect")? {
            Json::Null => Some(StoredAnswer::Incorrect { wrong_output: None }),
            Json::Int(k) => Some(StoredAnswer::Incorrect {
                wrong_output: Some(usize::try_from(*k).ok()?),
            }),
            _ => None,
        },
        _ => None,
    }
}

impl Record {
    /// Encodes the record as one JSON line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Record::Header { version } => obj(vec![
                ("k", Json::Str("header".into())),
                ("format", Json::Str(FORMAT.into())),
                ("version", Json::Int(*version as i64)),
            ]),
            Record::Report(r) => obj(vec![
                ("k", Json::Str("report".into())),
                ("unit", Json::Str(r.unit.clone())),
                ("code", Json::Str(r.code.clone())),
                (
                    "inputs",
                    Json::Array(r.inputs.iter().map(value_to_json).collect()),
                ),
                (
                    "outputs",
                    Json::Array(r.outputs.iter().map(value_to_json).collect()),
                ),
                ("passed", Json::Bool(r.passed)),
            ]),
            Record::Answer {
                key,
                answer,
                source,
            } => obj(vec![
                ("k", Json::Str("answer".into())),
                ("key", Json::Str(key.clone())),
                ("answer", answer_to_json(answer)),
                ("source", Json::Str(source.clone())),
            ]),
            Record::Verdict { key, payload } => obj(vec![
                ("k", Json::Str("verdict".into())),
                ("key", Json::Str(key.clone())),
                ("payload", payload.clone()),
            ]),
        }
        .to_string()
    }

    /// Decodes one line. `None` means the line is not a well-formed
    /// record of a known kind — the store's recovery treats that exactly
    /// like corruption.
    pub fn decode(line: &str) -> Option<Record> {
        let j = crate::json::parse(line)?;
        match j.get("k")?.as_str()? {
            "header" => {
                if j.get("format")?.as_str()? != FORMAT {
                    return None;
                }
                let version = u32::try_from(j.get("version")?.as_int()?).ok()?;
                Some(Record::Header { version })
            }
            "report" => {
                let values = |field: &str| -> Option<Vec<Value>> {
                    j.get(field)?
                        .as_array()?
                        .iter()
                        .map(value_from_json)
                        .collect()
                };
                Some(Record::Report(StoredReport {
                    unit: j.get("unit")?.as_str()?.to_string(),
                    code: j.get("code")?.as_str()?.to_string(),
                    inputs: values("inputs")?,
                    outputs: values("outputs")?,
                    passed: j.get("passed")?.as_bool()?,
                }))
            }
            "answer" => Some(Record::Answer {
                key: j.get("key")?.as_str()?.to_string(),
                answer: answer_from_json(j.get("answer")?)?,
                source: j.get("source")?.as_str()?.to_string(),
            }),
            "verdict" => Some(Record::Verdict {
                key: j.get("key")?.as_str()?.to_string(),
                payload: j.get("payload")?.clone(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_values() -> Vec<Value> {
        vec![
            Value::Int(-7),
            Value::Real(2.5),
            Value::Real(3.0),
            Value::Bool(true),
            Value::Char('x'),
            Value::Str("a \"b\"\n".into()),
            Value::Array(ArrayValue {
                lo: 1,
                elems: vec![Value::Int(1), Value::Int(2)],
            }),
        ]
    }

    #[test]
    fn values_round_trip() {
        for v in sample_values() {
            let j = value_to_json(&v);
            assert_eq!(value_from_json(&j).as_ref(), Some(&v), "{j}");
            // And through actual bytes.
            let reparsed = crate::json::parse(&j.to_string()).unwrap();
            assert_eq!(value_from_json(&reparsed), Some(v));
        }
    }

    #[test]
    fn records_round_trip_and_validate() {
        let records = vec![
            Record::Header { version: VERSION },
            Record::Report(StoredReport {
                unit: "arrsum".into(),
                code: "two.positive.small".into(),
                inputs: sample_values(),
                outputs: vec![Value::Int(3)],
                passed: true,
            }),
            Record::Answer {
                key: answer_key("ArrSum", &[Value::Int(2)]),
                answer: StoredAnswer::Incorrect {
                    wrong_output: Some(1),
                },
                source: "test database".into(),
            },
            Record::Answer {
                key: "q()".into(),
                answer: StoredAnswer::Correct,
                source: "assertions".into(),
            },
            Record::Verdict {
                key: "pqr/mutant:3".into(),
                payload: obj(vec![("status", Json::Str("equivalent".into()))]),
            },
        ];
        for r in records {
            let line = r.encode();
            assert!(gadt_obs::json::validate(&line).is_ok(), "{line}");
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(Record::decode(&line).as_ref(), Some(&r), "{line}");
            // Deterministic: encoding twice is byte-identical.
            assert_eq!(r.encode(), line);
        }
    }

    #[test]
    fn answer_keys_are_case_insensitive_and_value_sensitive() {
        let a = answer_key("ArrSum", &[Value::Int(2), Value::Real(2.0)]);
        let b = answer_key("arrsum", &[Value::Int(2), Value::Real(2.0)]);
        assert_eq!(a, b);
        // A real 2.0 and an int 2 are different knowledge.
        let c = answer_key("arrsum", &[Value::Int(2), Value::Int(2)]);
        assert_ne!(a, c);
        assert_eq!(a, "arrsum(2,2.0)");
    }

    #[test]
    fn decode_rejects_foreign_and_malformed_lines() {
        for bad in [
            "{}",
            r#"{"k":"mystery"}"#,
            r#"{"k":"header","format":"other","version":1}"#,
            r#"{"k":"report","unit":"u"}"#,
            r#"{"k":"answer","key":"x","answer":"maybe","source":"s"}"#,
            "not json at all",
        ] {
            assert_eq!(Record::decode(bad), None, "{bad}");
        }
    }
}
