//! Runtime values.
//!
//! Values print the way the paper's debugger shows them in queries, e.g.
//! arrays as `[1,2]` and booleans as `true`/`false`, so execution-tree
//! transcripts match Figure 7's `sqrtest(In [1,2], In 2, Out false)`.

use crate::types::Type;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Real.
    Real(f64),
    /// Boolean.
    Bool(bool),
    /// Character.
    Char(char),
    /// String (literals in `write`, captured output).
    Str(String),
    /// Array with an inclusive lower bound and dense element storage.
    Array(ArrayValue),
}

/// An array value: `elems[i]` holds the element with index `lo + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayValue {
    /// Declared lower bound.
    pub lo: i64,
    /// Elements, from index `lo` upward.
    pub elems: Vec<Value>,
}

impl ArrayValue {
    /// Inclusive upper bound.
    pub fn hi(&self) -> i64 {
        self.lo + self.elems.len() as i64 - 1
    }

    /// Element at Pascal index `i`, if in bounds.
    pub fn get(&self, i: i64) -> Option<&Value> {
        let off = i.checked_sub(self.lo)?;
        usize::try_from(off).ok().and_then(|o| self.elems.get(o))
    }

    /// Mutable element at Pascal index `i`, if in bounds.
    pub fn get_mut(&mut self, i: i64) -> Option<&mut Value> {
        let off = i.checked_sub(self.lo)?;
        usize::try_from(off)
            .ok()
            .and_then(move |o| self.elems.get_mut(o))
    }
}

impl Value {
    /// The zero-initialized default value of a type.
    ///
    /// Standard Pascal leaves variables undefined; we zero-initialize for
    /// deterministic, reproducible traces (documented substitution).
    pub fn zero_of(ty: &Type) -> Value {
        match ty {
            Type::Integer => Value::Int(0),
            Type::Real => Value::Real(0.0),
            Type::Boolean => Value::Bool(false),
            Type::Char => Value::Char(' '),
            Type::String => Value::Str(String::new()),
            Type::Array { lo, hi, elem } => {
                let n = usize::try_from((hi - lo + 1).max(0)).unwrap_or(0);
                Value::Array(ArrayValue {
                    lo: *lo,
                    elems: vec![Value::zero_of(elem); n],
                })
            }
        }
    }

    /// The semantic type of this value (array bounds come from the value).
    pub fn type_of(&self) -> Type {
        match self {
            Value::Int(_) => Type::Integer,
            Value::Real(_) => Type::Real,
            Value::Bool(_) => Type::Boolean,
            Value::Char(_) => Type::Char,
            Value::Str(_) => Type::String,
            Value::Array(a) => Type::Array {
                lo: a.lo,
                hi: a.hi(),
                elem: Box::new(a.elems.first().map(Value::type_of).unwrap_or(Type::Integer)),
            },
        }
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Extracts a real, widening integers.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// Extracts a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Coerces `self` to match the shape of `ty` (integer→real widening
    /// only); returns `None` when incompatible.
    pub fn coerce_to(&self, ty: &Type) -> Option<Value> {
        match (self, ty) {
            (Value::Int(n), Type::Real) => Some(Value::Real(*n as f64)),
            (v, t) if v.type_of().assignable_from(t) || t.assignable_from(&v.type_of()) => {
                Some(v.clone())
            }
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Real(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Bool(b) => write!(f, "{b}"),
            Value::Char(c) => write!(f, "{c}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, e) in a.elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Real(x)
    }
}

impl From<Vec<i64>> for Value {
    /// Builds a 1-based integer array, matching Pascal's conventional
    /// `array[1..n]` declarations.
    fn from(v: Vec<i64>) -> Self {
        Value::Array(ArrayValue {
            lo: 1,
            elems: v.into_iter().map(Value::Int).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_of_array() {
        let t = Type::Array {
            lo: 1,
            hi: 3,
            elem: Box::new(Type::Integer),
        };
        let v = Value::zero_of(&t);
        assert_eq!(v.to_string(), "[0,0,0]");
    }

    #[test]
    fn array_indexing_respects_lower_bound() {
        let v: Value = vec![10, 20, 30].into();
        let Value::Array(a) = v else { panic!() };
        assert_eq!(a.get(1), Some(&Value::Int(10)));
        assert_eq!(a.get(3), Some(&Value::Int(30)));
        assert_eq!(a.get(0), None);
        assert_eq!(a.get(4), None);
        assert_eq!(a.hi(), 3);
    }

    #[test]
    fn display_matches_paper_forms() {
        let v: Value = vec![1, 2].into();
        assert_eq!(v.to_string(), "[1,2]");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Int(12).to_string(), "12");
        assert_eq!(Value::Real(2.0).to_string(), "2.0");
    }

    #[test]
    fn widening_coercion() {
        assert_eq!(Value::Int(3).as_real(), Some(3.0));
        assert_eq!(Value::Int(3).coerce_to(&Type::Real), Some(Value::Real(3.0)));
        assert_eq!(Value::Real(3.5).as_int(), None);
    }

    #[test]
    fn type_of_round_trips() {
        let v: Value = vec![1, 2, 3].into();
        assert_eq!(
            v.type_of(),
            Type::Array {
                lo: 1,
                hi: 3,
                elem: Box::new(Type::Integer)
            }
        );
    }
}
