//! The example programs from the paper, transcribed as test fixtures.
//!
//! These are shared by the test suites, examples, and benchmark harness
//! across the workspace so every experiment runs the exact programs the
//! paper evaluates.

/// The program of **Figure 4**: computes the square of the sum of the
/// array `[1,2]` in two ways and checks that both agree. Contains the
/// planted bug in `decrement` (`y + 1` should be `y - 1`).
///
/// The paper writes the main call as `sqrtest([1,2], 2, isok)`; Pascal has
/// no array literals, so the array is built with two assignments first —
/// the execution tree below `sqrtest` is identical.
pub const SQRTEST: &str = r#"
program Main;
type intarray = array[1..2] of integer;
var isok: boolean;
    ary: intarray;

procedure test(r1, r2: integer; var isok: boolean);
begin
  isok := r1 = r2;
end;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do b := b + a[i];
end;

procedure square(y: integer; var r2: integer);
begin
  r2 := y * y;
end;

procedure comput2(y: integer; var r2: integer);
begin
  square(y, r2);
end;

procedure add(s1, s2: integer; var r1: integer);
begin
  r1 := s1 + s2;
end;

function decrement(y: integer): integer;
begin
  decrement := y + 1; (* a planted bug, should be: y - 1 *)
end;

function increment(y: integer): integer;
begin
  increment := y + 1;
end;

procedure sum2(y: integer; var s2: integer);
var t: integer;
begin
  s2 := decrement(y) * y div 2;
end;

procedure sum1(y: integer; var s1: integer);
var z: integer;
begin
  s1 := y * increment(y) div 2;
end;

procedure partialsums(y: integer; var s1, s2: integer);
begin
  sum1(y, s1);
  sum2(y, s2);
end;

procedure comput1(y: integer; var r1: integer);
var s1, s2: integer;
begin
  partialsums(y, s1, s2);
  add(s1, s2, r1);
end;

procedure computs(y: integer; var r1, r2: integer);
begin
  comput1(y, r1);
  comput2(y, r2);
end;

procedure sqrtest(ary: intarray; n: integer; var isok: boolean);
var r1, r2, t: integer;
begin
  arrsum(ary, n, t);
  computs(t, r1, r2);
  test(r1, r2, isok);
end;

begin (* Main *)
  ary[1] := 1;
  ary[2] := 2;
  sqrtest(ary, 2, isok);
end.
"#;

/// [`SQRTEST`] with the planted bug fixed (`decrement := y - 1`), used as
/// the correct reference when simulating the user oracle.
pub const SQRTEST_FIXED: &str = r#"
program Main;
type intarray = array[1..2] of integer;
var isok: boolean;
    ary: intarray;

procedure test(r1, r2: integer; var isok: boolean);
begin
  isok := r1 = r2;
end;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do b := b + a[i];
end;

procedure square(y: integer; var r2: integer);
begin
  r2 := y * y;
end;

procedure comput2(y: integer; var r2: integer);
begin
  square(y, r2);
end;

procedure add(s1, s2: integer; var r1: integer);
begin
  r1 := s1 + s2;
end;

function decrement(y: integer): integer;
begin
  decrement := y - 1;
end;

function increment(y: integer): integer;
begin
  increment := y + 1;
end;

procedure sum2(y: integer; var s2: integer);
var t: integer;
begin
  s2 := decrement(y) * y div 2;
end;

procedure sum1(y: integer; var s1: integer);
var z: integer;
begin
  s1 := y * increment(y) div 2;
end;

procedure partialsums(y: integer; var s1, s2: integer);
begin
  sum1(y, s1);
  sum2(y, s2);
end;

procedure comput1(y: integer; var r1: integer);
var s1, s2: integer;
begin
  partialsums(y, s1, s2);
  add(s1, s2, r1);
end;

procedure computs(y: integer; var r1, r2: integer);
begin
  comput1(y, r1);
  comput2(y, r2);
end;

procedure sqrtest(ary: intarray; n: integer; var isok: boolean);
var r1, r2, t: integer;
begin
  arrsum(ary, n, t);
  computs(t, r1, r2);
  test(r1, r2, isok);
end;

begin (* Main *)
  ary[1] := 1;
  ary[2] := 2;
  sqrtest(ary, 2, isok);
end.
"#;

/// The program of **Figure 2(a)**: reads `x` and `y`, computes `sum` and
/// `mul`. Slicing it on `mul` at the last line must reproduce Figure 2(b).
pub const FIGURE2: &str = r#"
program p;
var x, y, z, sum, mul: integer;
begin
  read(x, y);
  mul := 0;
  sum := 0;
  if x <= 1 then
    sum := x + y
  else begin
    read(z);
    mul := x * y;
  end;
end.
"#;

/// The **§3** example: `P` calls `Q` (computes `b` from `a`) and `R`
/// (computes `d` from `c`); `R` contains a planted bug. Algorithmic
/// debugging must localize the bug inside `R`.
pub const PQR: &str = r#"
program pqr;
var a, c, b, d: integer;

procedure p(a, c: integer; var b, d: integer);

  procedure q(a: integer; var b: integer);
  begin
    b := a * 2;
  end;

  procedure r(c: integer; var d: integer);
  begin
    d := c + 3; (* planted bug: should be c * 3 *)
  end;

begin
  q(a, b);
  r(c, d);
end;

begin
  a := 5;
  c := 7;
  p(a, c, b, d);
  writeln(b, d);
end.
"#;

/// Fixed variant of [`PQR`] (`d := c * 3`) used as the reference oracle.
pub const PQR_FIXED: &str = r#"
program pqr;
var a, c, b, d: integer;

procedure p(a, c: integer; var b, d: integer);

  procedure q(a: integer; var b: integer);
  begin
    b := a * 2;
  end;

  procedure r(c: integer; var d: integer);
  begin
    d := c * 3;
  end;

begin
  q(a, b);
  r(c, d);
end;

begin
  a := 5;
  c := 7;
  p(a, c, b, d);
  writeln(b, d);
end.
"#;

/// The **§7 / Figures 5–6** skeleton: `pn` computes `y` from `x`, while
/// `p1 … p(n-1)` are irrelevant to `y`. Slicing on `y` must drop the
/// irrelevant calls. (`n = 4` here; the paper leaves `n` schematic.)
pub const FIGURE5: &str = r#"
program fig5;
var x, y, u1, u2, u3: integer;

procedure p1(var u: integer);
begin
  u := u + 1;
end;

procedure p2(var u: integer);
begin
  u := u * 2;
end;

procedure p3(var u: integer);
begin
  u := u - 3;
end;

procedure pn(x: integer; var y: integer);
begin
  y := x * x + 1; (* planted bug: should be x * x *)
end;

begin
  x := 6;
  u1 := 1;
  u2 := 2;
  u3 := 3;
  p1(u1);
  p2(u2);
  p3(u3);
  pn(x, y);
  writeln(y);
end.
"#;

/// The **§6** global-side-effect example: procedure `p` references global
/// `x` and writes global `z`; the transformation must rewrite it to
/// `procedure p(var y: …; in x: …; out z: …)`.
pub const SECTION6_GLOBALS: &str = r#"
program sec6;
var x, z, w: integer;

procedure p(var y: integer);
begin
  y := x + 1;
  z := y - x;
end;

begin
  x := 10;
  p(w);
  writeln(w, z);
end.
"#;

/// The **§6** global-goto example: `q`, nested in `p`, jumps to label `9`
/// declared in `p`. The transformation breaks this into an exit-condition
/// parameter plus local gotos.
pub const SECTION6_GOTO: &str = r#"
program sec6goto;
var trace: integer;

procedure p(n: integer);
label 9;

  procedure q(n: integer);
  begin
    trace := trace + 1;
    if n > 0 then goto 9;
    trace := trace + 10;
  end;

begin
  q(n);
  trace := trace + 100;
  9: trace := trace + 1000;
end;

begin
  trace := 0;
  p(1);
  writeln(trace);
end.
"#;

/// The **§6** goto-out-of-a-loop example: a `while` loop containing a
/// `goto` addressed outside the loop. The transformation rewrites the loop
/// condition with a `leave` flag.
pub const SECTION6_LOOP_GOTO: &str = r#"
program sec6loop;
label 9;
var i, s: integer;

begin
  i := 0;
  s := 0;
  while i < 10 do begin
    i := i + 1;
    s := s + i;
    if s > 6 then goto 9;
  end;
  s := 0;
  9: writeln(s);
end.
"#;

/// A multi-level call-chain program built for mutation campaigns.
///
/// Each level calls a cheap *probe* procedure before descending into the
/// deeper chain, so a dynamic slice that excludes the probe lets the
/// debugger skip an earlier sibling at every level — the structural
/// situation where slicing-pruned algorithmic debugging saves questions
/// over the plain top-down search (§2, §5 of the paper).
pub const MULTICHAIN: &str = r#"
program chain;
var a, u1, v1, total: integer;

procedure probe1(x: integer; var r: integer);
begin
  r := x + 1;
end;

procedure probe2(x: integer; var r: integer);
begin
  r := x - 1;
end;

procedure probe3(x: integer; var r: integer);
var i: integer;
begin
  r := 0;
  i := 0;
  while i < x do begin
    i := i + 1;
    r := r + 2;
  end;
end;

procedure core3(x: integer; var r: integer);
begin
  r := x * 3 - 4;
end;

procedure level3(x: integer; var s, t: integer);
begin
  probe3(x, s);
  core3(x, t);
end;

procedure level2(x: integer; var s, t: integer);
var p, q: integer;
begin
  probe2(x, s);
  level3(x, p, q);
  t := p + q;
  if t < 0 then t := 0;
end;

procedure level1(x: integer; var s, t: integer);
var p, q: integer;
begin
  probe1(x, s);
  level2(x, p, q);
  t := p - q + x;
end;

begin
  a := 5;
  level1(a, u1, v1);
  total := u1 + v1;
  writeln(total);
end.
"#;

/// All named fixtures, for data-driven tests.
pub const ALL: &[(&str, &str)] = &[
    ("sqrtest", SQRTEST),
    ("sqrtest_fixed", SQRTEST_FIXED),
    ("figure2", FIGURE2),
    ("pqr", PQR),
    ("pqr_fixed", PQR_FIXED),
    ("figure5", FIGURE5),
    ("section6_globals", SECTION6_GLOBALS),
    ("section6_goto", SECTION6_GOTO),
    ("section6_loop_goto", SECTION6_LOOP_GOTO),
    ("multichain", MULTICHAIN),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn all_fixtures_parse() {
        for (name, src) in ALL {
            parse_program(src).unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        }
    }
}
