//! Recursive-descent parser for the Pascal subset.
//!
//! Grammar highlights relevant to the paper:
//!
//! * labels may be unsigned integers (`label 9; … goto 9; … 9: …`) as in
//!   classic Pascal and in the paper's §6 transformation examples, or
//!   identifiers;
//! * parameter groups accept `var` plus the contextual modes `in`/`out`
//!   produced by the transformation phase;
//! * `read`/`readln`/`write`/`writeln` are recognized as statements;
//! * operator precedence follows classic Pascal (`and` multiplies, `or`
//!   adds, relations are lowest and non-associative).

use crate::ast::*;
use crate::error::{Diagnostic, Result, Stage};
use crate::lexer::tokenize;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete program from source text.
///
/// # Errors
///
/// Returns the first lexical or syntax error encountered.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "program t; var x: integer; begin x := 1 end.";
/// let prog = gadt_pascal::parser::parse_program(src)?;
/// assert_eq!(prog.name.name, "t");
/// # Ok(())
/// # }
/// ```
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = tokenize(source)?;
    let mut p = Parser::new(tokens);
    p.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_stmt_id: u32,
    next_expr_id: u32,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_stmt_id: 0,
            next_expr_id: 0,
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn err(&self, msg: impl Into<String>) -> Diagnostic {
        Diagnostic::new(Stage::Parse, msg, self.span())
    }

    fn ident(&mut self) -> Result<Ident> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Ident::new(name, t.span))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt_id);
        self.next_stmt_id += 1;
        id
    }

    fn expr_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }

    // ------------------------------------------------------------------
    // Program structure
    // ------------------------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let start = self.span();
        self.expect(&TokenKind::Program)?;
        let name = self.ident()?;
        // Optional file parameter list `(input, output)`.
        if self.eat(&TokenKind::LParen) {
            while !self.at(&TokenKind::RParen) {
                self.ident()?;
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        self.expect(&TokenKind::Semicolon)?;
        let block = self.block()?;
        self.expect(&TokenKind::Dot)?;
        let span = start.merge(self.prev_span());
        Ok(Program {
            name,
            block,
            span,
            next_stmt_id: self.next_stmt_id,
            next_expr_id: self.next_expr_id,
        })
    }

    fn block(&mut self) -> Result<Block> {
        let start = self.span();
        let mut block = Block::default();
        loop {
            match self.peek() {
                TokenKind::Label => {
                    self.bump();
                    loop {
                        block.labels.push(self.label_name()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::Semicolon)?;
                }
                TokenKind::Const => {
                    self.bump();
                    while matches!(self.peek(), TokenKind::Ident(_)) {
                        let name = self.ident()?;
                        self.expect(&TokenKind::Eq)?;
                        let value = self.const_value()?;
                        let span = name.span.merge(self.prev_span());
                        self.expect(&TokenKind::Semicolon)?;
                        block.consts.push(ConstDecl { name, value, span });
                    }
                }
                TokenKind::Type => {
                    self.bump();
                    while matches!(self.peek(), TokenKind::Ident(_)) {
                        let name = self.ident()?;
                        self.expect(&TokenKind::Eq)?;
                        let ty = self.type_expr()?;
                        let span = name.span.merge(self.prev_span());
                        self.expect(&TokenKind::Semicolon)?;
                        block.types.push(TypeDecl { name, ty, span });
                    }
                }
                TokenKind::Var => {
                    self.bump();
                    while matches!(self.peek(), TokenKind::Ident(_)) {
                        let mut names = vec![self.ident()?];
                        while self.eat(&TokenKind::Comma) {
                            names.push(self.ident()?);
                        }
                        self.expect(&TokenKind::Colon)?;
                        let ty = self.type_expr()?;
                        let span = names[0].span.merge(self.prev_span());
                        self.expect(&TokenKind::Semicolon)?;
                        block.vars.push(VarDecl { names, ty, span });
                    }
                }
                TokenKind::Procedure | TokenKind::Function => {
                    block.procs.push(self.proc_decl()?);
                }
                _ => break,
            }
        }
        self.expect(&TokenKind::Begin)?;
        block.body = self.stmt_list(&TokenKind::End)?;
        self.expect(&TokenKind::End)?;
        block.span = start.merge(self.prev_span());
        Ok(block)
    }

    fn label_name(&mut self) -> Result<Ident> {
        match self.peek().clone() {
            TokenKind::IntLit(n) => {
                let t = self.bump();
                Ok(Ident::new(n.to_string(), t.span))
            }
            TokenKind::Ident(_) => self.ident(),
            other => Err(self.err(format!("expected label, found {}", other.describe()))),
        }
    }

    fn const_value(&mut self) -> Result<ConstValue> {
        let neg = self.eat(&TokenKind::Minus);
        match self.peek().clone() {
            TokenKind::IntLit(n) => {
                self.bump();
                Ok(ConstValue::Int(if neg { -n } else { n }))
            }
            TokenKind::RealLit(x) => {
                self.bump();
                Ok(ConstValue::Real(if neg { -x } else { x }))
            }
            TokenKind::True if !neg => {
                self.bump();
                Ok(ConstValue::Bool(true))
            }
            TokenKind::False if !neg => {
                self.bump();
                Ok(ConstValue::Bool(false))
            }
            TokenKind::StrLit(s) if !neg => {
                self.bump();
                Ok(ConstValue::Str(s))
            }
            other => Err(self.err(format!(
                "expected constant value, found {}",
                other.describe()
            ))),
        }
    }

    fn type_expr(&mut self) -> Result<TypeExpr> {
        if self.at(&TokenKind::Array) {
            let start = self.span();
            self.bump();
            self.expect(&TokenKind::LBracket)?;
            let lo = self.array_bound()?;
            self.expect(&TokenKind::DotDot)?;
            let hi = self.array_bound()?;
            self.expect(&TokenKind::RBracket)?;
            self.expect(&TokenKind::Of)?;
            let elem = Box::new(self.type_expr()?);
            let span = start.merge(elem.span());
            Ok(TypeExpr::Array { lo, hi, elem, span })
        } else {
            Ok(TypeExpr::Named(self.ident()?))
        }
    }

    fn array_bound(&mut self) -> Result<ArrayBound> {
        let neg = self.eat(&TokenKind::Minus);
        match self.peek().clone() {
            TokenKind::IntLit(n) => {
                self.bump();
                Ok(ArrayBound::Lit(if neg { -n } else { n }))
            }
            TokenKind::Ident(_) if !neg => Ok(ArrayBound::Const(self.ident()?)),
            other => Err(self.err(format!("expected array bound, found {}", other.describe()))),
        }
    }

    fn proc_decl(&mut self) -> Result<ProcDecl> {
        let start = self.span();
        let is_function = self.at(&TokenKind::Function);
        self.bump();
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                params.push(self.param_group()?);
                if !self.eat(&TokenKind::Semicolon) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let return_type = if is_function {
            self.expect(&TokenKind::Colon)?;
            Some(self.type_expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Semicolon)?;
        let block = self.block()?;
        self.expect(&TokenKind::Semicolon)?;
        let span = start.merge(self.prev_span());
        Ok(ProcDecl {
            name,
            params,
            return_type,
            block,
            span,
        })
    }

    fn param_group(&mut self) -> Result<ParamGroup> {
        let start = self.span();
        let mode = if self.eat(&TokenKind::Var) {
            ParamMode::Var
        } else if let TokenKind::Ident(word) = self.peek() {
            // `in` / `out` are contextual modes: they only count as a mode
            // when followed by another identifier (the first parameter name).
            let lower = word.to_ascii_lowercase();
            if (lower == "in" || lower == "out") && matches!(self.peek2(), TokenKind::Ident(_)) {
                self.bump();
                if lower == "in" {
                    ParamMode::In
                } else {
                    ParamMode::Out
                }
            } else {
                ParamMode::Value
            }
        } else {
            ParamMode::Value
        };
        let mut names = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            names.push(self.ident()?);
        }
        self.expect(&TokenKind::Colon)?;
        let ty = self.type_expr()?;
        let span = start.merge(ty.span());
        Ok(ParamGroup {
            mode,
            names,
            ty,
            span,
        })
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn stmt_list(&mut self, terminator: &TokenKind) -> Result<Vec<Stmt>> {
        let mut stmts = Vec::new();
        loop {
            if self.at(terminator) || self.at(&TokenKind::Until) {
                break;
            }
            stmts.push(self.statement()?);
            if !self.eat(&TokenKind::Semicolon) {
                break;
            }
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt> {
        let start = self.span();
        // Labeled statement: `9:` or `name:` (but not `name :=`).
        let is_label = match self.peek() {
            TokenKind::IntLit(_) => self.peek2() == &TokenKind::Colon,
            TokenKind::Ident(_) => self.peek2() == &TokenKind::Colon,
            _ => false,
        };
        if is_label {
            let label = self.label_name()?;
            self.expect(&TokenKind::Colon)?;
            let stmt = Box::new(self.statement()?);
            let id = self.stmt_id();
            let span = start.merge(stmt.span);
            return Ok(Stmt {
                id,
                kind: StmtKind::Labeled { label, stmt },
                span,
            });
        }
        match self.peek().clone() {
            TokenKind::Begin => {
                self.bump();
                let stmts = self.stmt_list(&TokenKind::End)?;
                self.expect(&TokenKind::End)?;
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Compound(stmts),
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Then)?;
                let then_branch = Box::new(self.statement()?);
                let else_branch = if self.eat(&TokenKind::Else) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::If {
                        cond,
                        then_branch,
                        else_branch,
                    },
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Case => {
                self.bump();
                let scrutinee = self.expr()?;
                self.expect(&TokenKind::Of)?;
                let mut arms = Vec::new();
                let mut else_arm = None;
                loop {
                    if self.at(&TokenKind::End) {
                        break;
                    }
                    if self.eat(&TokenKind::Else) {
                        else_arm = Some(Box::new(self.statement()?));
                        let _ = self.eat(&TokenKind::Semicolon);
                        break;
                    }
                    let mut labels = vec![self.const_value()?];
                    while self.eat(&TokenKind::Comma) {
                        labels.push(self.const_value()?);
                    }
                    self.expect(&TokenKind::Colon)?;
                    let stmt = self.statement()?;
                    arms.push(CaseArm { labels, stmt });
                    // The semicolon between arms is optional before
                    // `else`/`end` (classic Pascal).
                    let _ = self.eat(&TokenKind::Semicolon);
                }
                self.expect(&TokenKind::End)?;
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Case {
                        scrutinee,
                        arms,
                        else_arm,
                    },
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&TokenKind::Do)?;
                let body = Box::new(self.statement()?);
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::While { cond, body },
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Repeat => {
                self.bump();
                let body = self.stmt_list(&TokenKind::Until)?;
                self.expect(&TokenKind::Until)?;
                let cond = self.expr()?;
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Repeat { body, cond },
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let from = self.expr()?;
                let dir = if self.eat(&TokenKind::To) {
                    ForDir::To
                } else if self.eat(&TokenKind::Downto) {
                    ForDir::Downto
                } else {
                    return Err(self.err(format!(
                        "expected `to` or `downto`, found {}",
                        self.peek().describe()
                    )));
                };
                let to = self.expr()?;
                self.expect(&TokenKind::Do)?;
                let body = Box::new(self.statement()?);
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::For {
                        var,
                        from,
                        dir,
                        to,
                        body,
                    },
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Goto => {
                self.bump();
                let label = self.label_name()?;
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Goto(label),
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "read" | "readln" => self.read_stmt(lower == "readln"),
                    "write" | "writeln" => self.write_stmt(lower == "writeln"),
                    _ => self.assign_or_call(),
                }
            }
            // Empty statement (e.g. `begin ; end` or before `end`).
            TokenKind::Semicolon | TokenKind::End => {
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Empty,
                    span: Span::new(start.start, start.start),
                })
            }
            other => Err(self.err(format!("expected statement, found {}", other.describe()))),
        }
    }

    fn read_stmt(&mut self, newline: bool) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // read / readln
        let mut args = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                args.push(self.lvalue()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let id = self.stmt_id();
        Ok(Stmt {
            id,
            kind: StmtKind::Read { args, newline },
            span: start.merge(self.prev_span()),
        })
    }

    fn write_stmt(&mut self, newline: bool) -> Result<Stmt> {
        let start = self.span();
        self.bump(); // write / writeln
        let mut args = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let id = self.stmt_id();
        Ok(Stmt {
            id,
            kind: StmtKind::Write { args, newline },
            span: start.merge(self.prev_span()),
        })
    }

    fn lvalue(&mut self) -> Result<LValue> {
        let base = self.ident()?;
        let start = base.span;
        let index = if self.eat(&TokenKind::LBracket) {
            let idx = self.expr()?;
            self.expect(&TokenKind::RBracket)?;
            Some(Box::new(idx))
        } else {
            None
        };
        let id = self.expr_id();
        Ok(LValue {
            id,
            base,
            index,
            span: start.merge(self.prev_span()),
        })
    }

    fn assign_or_call(&mut self) -> Result<Stmt> {
        let start = self.span();
        let name = self.ident()?;
        match self.peek() {
            TokenKind::Assign | TokenKind::LBracket => {
                let index = if self.eat(&TokenKind::LBracket) {
                    let idx = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Some(Box::new(idx))
                } else {
                    None
                };
                let lspan = start.merge(self.prev_span());
                let lvalue_id = self.expr_id();
                self.expect(&TokenKind::Assign)?;
                let rhs = self.expr()?;
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Assign {
                        lhs: LValue {
                            id: lvalue_id,
                            base: name,
                            index,
                            span: lspan,
                        },
                        rhs,
                    },
                    span: start.merge(self.prev_span()),
                })
            }
            TokenKind::LParen => {
                self.bump();
                let mut args = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Call { name, args },
                    span: start.merge(self.prev_span()),
                })
            }
            _ => {
                // Parameterless procedure call.
                let id = self.stmt_id();
                Ok(Stmt {
                    id,
                    kind: StmtKind::Call { name, args: vec![] },
                    span: start.merge(self.prev_span()),
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions (classic Pascal precedence)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        let lhs = self.simple_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.simple_expr()?;
        let span = lhs.span.merge(rhs.span);
        let id = self.expr_id();
        Ok(Expr {
            id,
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        })
    }

    fn simple_expr(&mut self) -> Result<Expr> {
        let start = self.span();
        let mut lhs = if self.eat(&TokenKind::Minus) {
            let operand = self.term()?;
            let span = start.merge(operand.span);
            let id = self.expr_id();
            Expr {
                id,
                kind: ExprKind::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                },
                span,
            }
        } else {
            self.eat(&TokenKind::Plus);
            self.term()?
        };
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Or => BinOp::Or,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            let span = lhs.span.merge(rhs.span);
            let id = self.expr_id();
            lhs = Expr {
                id,
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::FDiv,
                TokenKind::Div => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                TokenKind::And => BinOp::And,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            let span = lhs.span.merge(rhs.span);
            let id = self.expr_id();
            lhs = Expr {
                id,
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr> {
        let start = self.span();
        match self.peek().clone() {
            TokenKind::IntLit(n) => {
                self.bump();
                let id = self.expr_id();
                Ok(Expr {
                    id,
                    kind: ExprKind::IntLit(n),
                    span: start,
                })
            }
            TokenKind::RealLit(x) => {
                self.bump();
                let id = self.expr_id();
                Ok(Expr {
                    id,
                    kind: ExprKind::RealLit(x),
                    span: start,
                })
            }
            TokenKind::StrLit(s) => {
                self.bump();
                let id = self.expr_id();
                Ok(Expr {
                    id,
                    kind: ExprKind::StrLit(s),
                    span: start,
                })
            }
            TokenKind::True | TokenKind::False => {
                let value = self.at(&TokenKind::True);
                self.bump();
                let id = self.expr_id();
                Ok(Expr {
                    id,
                    kind: ExprKind::BoolLit(value),
                    span: start,
                })
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.factor()?;
                let span = start.merge(operand.span);
                let id = self.expr_id();
                Ok(Expr {
                    id,
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        operand: Box::new(operand),
                    },
                    span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(_) => {
                let name = self.ident()?;
                match self.peek() {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.at(&TokenKind::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                        let span = start.merge(self.prev_span());
                        let id = self.expr_id();
                        Ok(Expr {
                            id,
                            kind: ExprKind::Call { name, args },
                            span,
                        })
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&TokenKind::RBracket)?;
                        let span = start.merge(self.prev_span());
                        let id = self.expr_id();
                        Ok(Expr {
                            id,
                            kind: ExprKind::Index {
                                base: name,
                                index: Box::new(index),
                            },
                            span,
                        })
                    }
                    _ => {
                        let id = self.expr_id();
                        Ok(Expr {
                            id,
                            kind: ExprKind::Name(name),
                            span: start,
                        })
                    }
                }
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Program {
        parse_program(src).unwrap_or_else(|e| panic!("parse failed: {e}\nsource: {src}"))
    }

    #[test]
    fn minimal_program() {
        let p = parse("program t; begin end.");
        assert_eq!(p.name.name, "t");
        assert!(p.block.body.is_empty());
    }

    #[test]
    fn program_with_file_params() {
        let p = parse("program t(input, output); begin end.");
        assert_eq!(p.name.name, "t");
    }

    #[test]
    fn declarations_all_sections() {
        let p = parse(
            "program t;
             label 9, done;
             const n = 10; pi = 3.14; neg = -2;
             type intarray = array[1..n] of integer;
             var x, y: integer; a: intarray;
             begin end.",
        );
        assert_eq!(p.block.labels.len(), 2);
        assert_eq!(p.block.consts.len(), 3);
        assert_eq!(p.block.consts[2].value, ConstValue::Int(-2));
        assert_eq!(p.block.types.len(), 1);
        assert_eq!(p.block.vars.len(), 2);
        assert_eq!(p.block.vars[0].names.len(), 2);
    }

    #[test]
    fn nested_procedures() {
        let p = parse(
            "program t;
             procedure p(a, c: integer; var b, d: integer);
               procedure q(a: integer; var b: integer);
               begin b := a end;
               procedure r(c: integer; var d: integer);
               begin d := c end;
             begin q(a, b); r(c, d) end;
             begin end.",
        );
        assert_eq!(p.block.procs.len(), 1);
        let outer = &p.block.procs[0];
        assert_eq!(outer.block.procs.len(), 2);
        assert_eq!(outer.params.len(), 2);
        assert_eq!(outer.params[0].mode, ParamMode::Value);
        assert_eq!(outer.params[1].mode, ParamMode::Var);
    }

    #[test]
    fn in_out_parameter_modes() {
        let p = parse(
            "program t;
             procedure p(var y: integer; in x: integer; out z: integer);
             begin y := x + 1; z := y - x end;
             begin end.",
        );
        let pr = &p.block.procs[0];
        assert_eq!(pr.params[0].mode, ParamMode::Var);
        assert_eq!(pr.params[1].mode, ParamMode::In);
        assert_eq!(pr.params[2].mode, ParamMode::Out);
    }

    #[test]
    fn in_as_plain_parameter_name_still_parses() {
        // `in` followed by `:` is a parameter named `in`.
        let p = parse("program t; procedure p(in: integer); begin end; begin end.");
        assert_eq!(p.block.procs[0].params[0].mode, ParamMode::Value);
        assert_eq!(p.block.procs[0].params[0].names[0].name, "in");
    }

    #[test]
    fn function_declaration() {
        let p = parse(
            "program t;
             function decrement(y: integer): integer;
             begin decrement := y - 1 end;
             begin end.",
        );
        let f = &p.block.procs[0];
        assert!(f.is_function());
    }

    #[test]
    fn statements_all_kinds() {
        let p = parse(
            "program t;
             label 9;
             var i, x: integer; a: array[1..10] of integer; ok: boolean;
             begin
               x := 0;
               a[1] := x + 1;
               if x = 0 then x := 1 else x := 2;
               while x < 10 do x := x + 1;
               repeat x := x - 1 until x = 0;
               for i := 1 to 10 do a[i] := i;
               for i := 10 downto 1 do a[i] := i;
               goto 9;
               9: x := 99;
               read(x);
               readln(x);
               write('x = ', x);
               writeln(x)
             end.",
        );
        assert_eq!(p.block.body.len(), 13);
        assert!(matches!(p.block.body[7].kind, StmtKind::Goto(_)));
        assert!(matches!(p.block.body[8].kind, StmtKind::Labeled { .. }));
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let p = parse("program t; var a, b, c, r: boolean; begin r := a or b and c end.");
        let StmtKind::Assign { rhs, .. } = &p.block.body[0].kind else {
            panic!()
        };
        let ExprKind::Binary { op, .. } = &rhs.kind else {
            panic!()
        };
        assert_eq!(*op, BinOp::Or);
    }

    #[test]
    fn precedence_relation_is_lowest() {
        let p = parse("program t; var r: boolean; x: integer; begin r := x + 1 = 2 * 3 end.");
        let StmtKind::Assign { rhs, .. } = &p.block.body[0].kind else {
            panic!()
        };
        let ExprKind::Binary { op, lhs, rhs: r } = &rhs.kind else {
            panic!()
        };
        assert_eq!(*op, BinOp::Eq);
        assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Add, .. }));
        assert!(matches!(r.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn unary_minus_and_not() {
        let p = parse("program t; var x: integer; b: boolean; begin x := -x; b := not b end.");
        assert!(matches!(
            &p.block.body[0].kind,
            StmtKind::Assign { rhs, .. } if matches!(rhs.kind, ExprKind::Unary { op: UnOp::Neg, .. })
        ));
    }

    #[test]
    fn call_statement_forms() {
        let p = parse(
            "program t;
             procedure p; begin end;
             procedure q(x: integer); begin end;
             begin p; q(1) end.",
        );
        assert!(matches!(&p.block.body[0].kind, StmtKind::Call { args, .. } if args.is_empty()));
        assert!(matches!(&p.block.body[1].kind, StmtKind::Call { args, .. } if args.len() == 1));
    }

    #[test]
    fn function_call_in_expression() {
        let p = parse(
            "program t;
             var s: integer;
             function inc(y: integer): integer; begin inc := y + 1 end;
             begin s := inc(3) * 2 end.",
        );
        let StmtKind::Assign { rhs, .. } = &p.block.body[0].kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn error_on_missing_semicolon_between_decl() {
        assert!(parse_program("program t var x: integer; begin end.").is_err());
    }

    #[test]
    fn error_message_mentions_expectation() {
        let e = parse_program("program t; begin x = 1 end.").unwrap_err();
        assert!(e.message.contains("expected"), "{}", e.message);
    }

    #[test]
    fn stmt_ids_are_unique() {
        let p = parse(
            "program t; var x: integer;
             begin x := 1; if x = 1 then x := 2 else x := 3; while x > 0 do x := x - 1 end.",
        );
        let mut ids = Vec::new();
        p.block.walk_stmts(&mut |s| ids.push(s.id));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn paper_figure2_program_parses() {
        // The example program of Figure 2(a).
        let p = parse(
            "program p;
             var x, y, z, sum, mul: integer;
             begin
               read(x, y);
               mul := 0;
               sum := 0;
               if x <= 1 then
                 sum := x + y
               else begin
                 read(z);
                 mul := x * y;
               end;
             end.",
        );
        assert_eq!(p.block.body.len(), 4);
    }

    #[test]
    fn trailing_semicolon_inside_compound_is_ok() {
        let p = parse("program t; var x: integer; begin x := 1; end.");
        // Trailing `;` before `end` produces the assignment only (the empty
        // statement after it is materialized).
        assert!(p.block.body.len() <= 2);
    }
}
