//! # gadt-pascal
//!
//! A Pascal-subset front end and execution engine: the language substrate
//! for the GADT reproduction (Fritzson, Gyimóthy, Kamkar, Shahmehri,
//! *Generalized Algorithmic Debugging and Testing*, PLDI 1991).
//!
//! The paper generalizes algorithmic debugging to imperative programs with
//! side effects, prototyped on Pascal. This crate provides everything the
//! other workspace crates need from a language implementation:
//!
//! * [`lexer`] / [`parser`] — classic Pascal syntax, including numeric
//!   labels and `goto` (the transformation phase's raw material) and the
//!   `in`/`out` parameter modes the transformation introduces;
//! * [`sema`] — name resolution (with nested procedures and non-local
//!   references) and type checking, producing a [`sema::Module`];
//! * [`mod@cfg`] — per-procedure control-flow graphs that both the interpreter
//!   and the flow analyses consume;
//! * [`interp`] — a deterministic interpreter with monitor hooks for
//!   building execution trees and dynamic dependence traces;
//! * [`pretty`] — a source printer, also able to print *slices* (programs
//!   restricted to a statement set) in the style of the paper's Figure 2;
//! * [`testprogs`] — the paper's example programs as shared fixtures.
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gadt_pascal::{sema::compile, interp::Interpreter};
//!
//! let module = compile(
//!     "program demo; var x, y: integer;
//!      begin read(x); y := x * x; writeln(y) end.",
//! )?;
//! let mut interp = Interpreter::new(&module);
//! interp.push_input_int(7);
//! let outcome = interp.run()?;
//! assert_eq!(outcome.output_text(), "49\n");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod ast_mut;
pub mod cfg;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod testprogs;
pub mod token;
pub mod types;
pub mod value;

pub use error::Diagnostic;
pub use sema::{compile, Module};
pub use value::Value;
