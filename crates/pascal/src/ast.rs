//! Abstract syntax tree for the Pascal subset.
//!
//! Every statement and expression carries a stable id assigned at parse
//! time. Ids survive transformation and CFG lowering, which is how slices
//! (sets of statement ids) map back to source and how the transformed
//! program stays linked to the original (§6.1 of the paper).
//!
//! Parameter modes include `in`/`out` in addition to Pascal's value/`var`;
//! the paper's transformation phase introduces these when converting global
//! variables to parameters (§6, "Conversion of global variables to
//! parameters").

use crate::span::Span;
use std::fmt;

/// Unique id of a statement within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

/// Unique id of an expression within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for ExprId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An identifier occurrence. Pascal identifiers are case-insensitive;
/// [`Ident::key`] gives the normalized form used for name resolution while
/// `name` preserves the original spelling for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// Original spelling.
    pub name: String,
    /// Source location.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a given span.
    pub fn new(name: impl Into<String>, span: Span) -> Self {
        Ident {
            name: name.into(),
            span,
        }
    }

    /// Creates an identifier with a dummy span (for synthesized code).
    pub fn synthetic(name: impl Into<String>) -> Self {
        Ident::new(name, Span::dummy())
    }

    /// The case-normalized resolution key.
    pub fn key(&self) -> String {
        self.name.to_ascii_lowercase()
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// A complete program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name from the `program` heading.
    pub name: Ident,
    /// The outermost block (globals plus the main body).
    pub block: Block,
    /// Span of the whole program.
    pub span: Span,
    /// Next unassigned statement id (transforms allocate from here).
    pub next_stmt_id: u32,
    /// Next unassigned expression id.
    pub next_expr_id: u32,
}

impl Program {
    /// Allocates a fresh statement id (used by program transformations).
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt_id);
        self.next_stmt_id += 1;
        id
    }

    /// Allocates a fresh expression id.
    pub fn fresh_expr_id(&mut self) -> ExprId {
        let id = ExprId(self.next_expr_id);
        self.next_expr_id += 1;
        id
    }
}

/// A declaration part plus a body: the contents of a program, procedure, or
/// function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// `label` declarations.
    pub labels: Vec<Ident>,
    /// `const` declarations.
    pub consts: Vec<ConstDecl>,
    /// `type` declarations.
    pub types: Vec<TypeDecl>,
    /// `var` declarations.
    pub vars: Vec<VarDecl>,
    /// Nested procedure and function declarations.
    pub procs: Vec<ProcDecl>,
    /// The `begin … end` body statements.
    pub body: Vec<Stmt>,
    /// Span of the body.
    pub span: Span,
}

/// A constant declaration `name = literal;`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDecl {
    /// Constant name.
    pub name: Ident,
    /// Constant value.
    pub value: ConstValue,
    /// Source span.
    pub span: Span,
}

/// The literal value of a constant declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstValue {
    /// Integer constant (possibly negated).
    Int(i64),
    /// Real constant (possibly negated).
    Real(f64),
    /// Boolean constant.
    Bool(bool),
    /// String/char constant.
    Str(String),
}

/// A type declaration `name = type-expr;`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDecl {
    /// Declared type name.
    pub name: Ident,
    /// The definition.
    pub ty: TypeExpr,
    /// Source span.
    pub span: Span,
}

/// A syntactic type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeExpr {
    /// A named type: builtin (`integer`, `real`, `boolean`, `char`) or
    /// declared via `type`.
    Named(Ident),
    /// `array[lo..hi] of elem`.
    Array {
        /// Lower bound.
        lo: ArrayBound,
        /// Upper bound.
        hi: ArrayBound,
        /// Element type.
        elem: Box<TypeExpr>,
        /// Source span.
        span: Span,
    },
}

impl TypeExpr {
    /// The source span of this type expression.
    pub fn span(&self) -> Span {
        match self {
            TypeExpr::Named(id) => id.span,
            TypeExpr::Array { span, .. } => *span,
        }
    }
}

/// An array bound: a literal or a reference to a declared constant.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayBound {
    /// A (possibly negative) integer literal.
    Lit(i64),
    /// A constant name resolved during semantic analysis.
    Const(Ident),
}

/// A variable declaration group `a, b: integer;`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// The declared names.
    pub names: Vec<Ident>,
    /// Their common type.
    pub ty: TypeExpr,
    /// Source span.
    pub span: Span,
}

/// How a parameter is passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamMode {
    /// Pass by value (Pascal default).
    Value,
    /// Pass by reference (`var`). Read-write.
    Var,
    /// Read-only input introduced by the transformation phase (`in`).
    /// Semantically a value parameter that the body must not assign.
    In,
    /// Write-only output introduced by the transformation phase (`out`).
    /// Semantically a `var` parameter whose initial value must not be read.
    Out,
}

impl ParamMode {
    /// Whether an argument must be an lvalue (reference-like modes).
    pub fn is_reference(self) -> bool {
        matches!(self, ParamMode::Var | ParamMode::Out)
    }

    /// Whether the caller observes writes through this parameter.
    pub fn passes_back(self) -> bool {
        matches!(self, ParamMode::Var | ParamMode::Out)
    }

    /// Whether the callee may read the incoming value.
    pub fn passes_in(self) -> bool {
        !matches!(self, ParamMode::Out)
    }
}

impl fmt::Display for ParamMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParamMode::Value => "",
            ParamMode::Var => "var",
            ParamMode::In => "in",
            ParamMode::Out => "out",
        };
        write!(f, "{s}")
    }
}

/// One parameter group `mode a, b: type`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGroup {
    /// Passing mode.
    pub mode: ParamMode,
    /// Names in the group.
    pub names: Vec<Ident>,
    /// The common type.
    pub ty: TypeExpr,
    /// Source span.
    pub span: Span,
}

/// A procedure or function declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcDecl {
    /// Procedure/function name.
    pub name: Ident,
    /// Formal parameter groups in declaration order.
    pub params: Vec<ParamGroup>,
    /// `Some(t)` for a function returning `t`, `None` for a procedure.
    pub return_type: Option<TypeExpr>,
    /// Declarations and body.
    pub block: Block,
    /// Span of the whole declaration.
    pub span: Span,
}

impl ProcDecl {
    /// Whether this is a function (has a return type).
    pub fn is_function(&self) -> bool {
        self.return_type.is_some()
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// Stable id.
    pub id: StmtId,
    /// The statement proper.
    pub kind: StmtKind,
    /// Source span.
    pub span: Span,
}

/// Direction of a `for` loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ForDir {
    /// `for i := a to b`.
    To,
    /// `for i := a downto b`.
    Downto,
}

/// One arm of a `case` statement: constant labels and the statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// The constant labels selecting this arm.
    pub labels: Vec<ConstValue>,
    /// The arm's statement.
    pub stmt: Stmt,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// The empty statement.
    Empty,
    /// `lhs := rhs`.
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Assigned expression.
        rhs: Expr,
    },
    /// A procedure call statement.
    Call {
        /// Callee name.
        name: Ident,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// `begin s1; …; sn end`.
    Compound(Vec<Stmt>),
    /// `if cond then … [else …]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Optional else branch.
        else_branch: Option<Box<Stmt>>,
    },
    /// `case scrutinee of c1: s1; …; [else s] end`.
    Case {
        /// The selected expression (evaluated once).
        scrutinee: Expr,
        /// The arms in order.
        arms: Vec<CaseArm>,
        /// The optional `else` arm.
        else_arm: Option<Box<Stmt>>,
    },
    /// `while cond do body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `repeat body until cond`.
    Repeat {
        /// Body statements.
        body: Vec<Stmt>,
        /// Exit condition (true terminates the loop).
        cond: Expr,
    },
    /// `for var := from to/downto to_ do body`.
    For {
        /// Control variable.
        var: Ident,
        /// Initial value.
        from: Expr,
        /// Direction.
        dir: ForDir,
        /// Final value (evaluated once, per Pascal semantics).
        to: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `goto label`.
    Goto(Ident),
    /// `label: stmt`.
    Labeled {
        /// The label.
        label: Ident,
        /// The labeled statement.
        stmt: Box<Stmt>,
    },
    /// `read(v1, …)` / `readln(v1, …)`.
    Read {
        /// Targets read into.
        args: Vec<LValue>,
        /// Whether this was `readln`.
        newline: bool,
    },
    /// `write(e1, …)` / `writeln(e1, …)`.
    Write {
        /// Values written.
        args: Vec<Expr>,
        /// Whether this was `writeln`.
        newline: bool,
    },
}

/// An assignable location: a variable or an array element.
#[derive(Debug, Clone, PartialEq)]
pub struct LValue {
    /// Stable id (drawn from the expression id space) used to key name
    /// resolution results.
    pub id: ExprId,
    /// Base variable name (or function name inside a function body, for the
    /// Pascal `f := result` convention).
    pub base: Ident,
    /// `Some(i)` for `base[i]`.
    pub index: Option<Box<Expr>>,
    /// Source span.
    pub span: Span,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Stable id.
    pub id: ExprId,
    /// The expression proper.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnOp::Neg => write!(f, "-"),
            UnOp::Not => write!(f, "not"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (real division)
    FDiv,
    /// `div` (integer division)
    Div,
    /// `mod`
    Mod,
    /// `and`
    And,
    /// `or`
    Or,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Whether this is a comparison producing a boolean.
    pub fn is_relational(self) -> bool {
        use BinOp::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge)
    }

    /// Whether this is `and`/`or`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use BinOp::*;
        let s = match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            FDiv => "/",
            Div => "div",
            Mod => "mod",
            And => "and",
            Or => "or",
            Eq => "=",
            Ne => "<>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Real literal.
    RealLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// String literal (only meaningful in `write`; single chars are chars).
    StrLit(String),
    /// A plain name: a variable, constant, or zero-argument function call
    /// (disambiguated during semantic analysis).
    Name(Ident),
    /// `base[index]`.
    Index {
        /// Array variable.
        base: Ident,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `name(args)` — a function call.
    Call {
        /// Callee name.
        name: Ident,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Stmt {
    /// Iterates over this statement and all statements nested inside it.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Stmt)) {
        visit(self);
        match &self.kind {
            StmtKind::Compound(stmts) | StmtKind::Repeat { body: stmts, .. } => {
                for s in stmts {
                    s.walk(visit);
                }
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(visit);
                if let Some(e) = else_branch {
                    e.walk(visit);
                }
            }
            StmtKind::Case { arms, else_arm, .. } => {
                for a in arms {
                    a.stmt.walk(visit);
                }
                if let Some(e) = else_arm {
                    e.walk(visit);
                }
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => body.walk(visit),
            StmtKind::Labeled { stmt, .. } => stmt.walk(visit),
            StmtKind::Empty
            | StmtKind::Assign { .. }
            | StmtKind::Call { .. }
            | StmtKind::Goto(_)
            | StmtKind::Read { .. }
            | StmtKind::Write { .. } => {}
        }
    }
}

impl Block {
    /// Iterates over all statements in the body (recursively), not entering
    /// nested procedure declarations.
    pub fn walk_stmts<'a>(&'a self, visit: &mut dyn FnMut(&'a Stmt)) {
        for s in &self.body {
            s.walk(visit);
        }
    }

    /// Counts statements in the body recursively (excluding nested procs).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        self.walk_stmts(&mut |_| n += 1);
        n
    }
}

impl Program {
    /// Visits every procedure declaration in the program, depth-first,
    /// including nested ones. The callback receives the path of enclosing
    /// procedure names (outermost first; empty for top-level procedures).
    pub fn walk_procs<'a>(&'a self, visit: &mut dyn FnMut(&[&'a str], &'a ProcDecl)) {
        fn rec<'a>(
            block: &'a Block,
            path: &mut Vec<&'a str>,
            visit: &mut dyn FnMut(&[&'a str], &'a ProcDecl),
        ) {
            for p in &block.procs {
                visit(path, p);
                path.push(&p.name.name);
                rec(&p.block, path, visit);
                path.pop();
            }
        }
        let mut path = Vec::new();
        rec(&self.block, &mut path, visit);
    }

    /// Total number of statements in the program (all bodies).
    pub fn stmt_count(&self) -> usize {
        let mut n = self.block.stmt_count();
        self.walk_procs(&mut |_, p| n += p.block.stmt_count());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(id: u32, kind: StmtKind) -> Stmt {
        Stmt {
            id: StmtId(id),
            kind,
            span: Span::dummy(),
        }
    }

    #[test]
    fn walk_visits_nested_statements() {
        let inner = stmt(1, StmtKind::Empty);
        let s = stmt(
            0,
            StmtKind::While {
                cond: Expr {
                    id: ExprId(0),
                    kind: ExprKind::BoolLit(true),
                    span: Span::dummy(),
                },
                body: Box::new(stmt(2, StmtKind::Compound(vec![inner]))),
            },
        );
        let mut seen = Vec::new();
        s.walk(&mut |s| seen.push(s.id.0));
        assert_eq!(seen, vec![0, 2, 1]);
    }

    #[test]
    fn param_mode_predicates() {
        assert!(ParamMode::Var.is_reference());
        assert!(ParamMode::Out.is_reference());
        assert!(!ParamMode::Value.is_reference());
        assert!(!ParamMode::In.is_reference());
        assert!(ParamMode::In.passes_in());
        assert!(!ParamMode::Out.passes_in());
        assert!(ParamMode::Out.passes_back());
    }

    #[test]
    fn ident_key_normalizes_case() {
        assert_eq!(Ident::synthetic("ArrSum").key(), "arrsum");
    }

    #[test]
    fn fresh_ids_are_monotonic() {
        let mut p = Program {
            name: Ident::synthetic("t"),
            block: Block::default(),
            span: Span::dummy(),
            next_stmt_id: 5,
            next_expr_id: 7,
        };
        assert_eq!(p.fresh_stmt_id(), StmtId(5));
        assert_eq!(p.fresh_stmt_id(), StmtId(6));
        assert_eq!(p.fresh_expr_id(), ExprId(7));
    }
}
