//! Token definitions for the Pascal subset.

use crate::span::Span;
use std::fmt;

/// A lexical token: a kind plus the source span it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it appeared.
    pub span: Span,
}

/// The kinds of token produced by the lexer.
///
/// Keywords are case-insensitive in Pascal; the lexer normalizes them.
/// Identifiers preserve their original spelling but compare
/// case-insensitively during name resolution.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // keyword/punctuation variants are self-describing
pub enum TokenKind {
    // Literals and identifiers
    /// An identifier such as `arrsum`.
    Ident(String),
    /// An unsigned integer literal.
    IntLit(i64),
    /// An unsigned real literal.
    RealLit(f64),
    /// A quoted string literal; single-character strings double as chars.
    StrLit(String),

    // Keywords
    Program,
    Label,
    Const,
    Type,
    Var,
    Procedure,
    Function,
    Begin,
    Case,
    End,
    If,
    Then,
    Else,
    While,
    Do,
    Repeat,
    Until,
    For,
    To,
    Downto,
    Goto,
    Of,
    Array,
    Div,
    Mod,
    And,
    Or,
    Not,
    True,
    False,

    // Punctuation and operators
    Plus,
    Minus,
    Star,
    Slash,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Assign,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Colon,
    Dot,
    DotDot,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `ident` if it is a reserved word.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        use TokenKind::*;
        let lower = ident.to_ascii_lowercase();
        Some(match lower.as_str() {
            "program" => Program,
            "label" => Label,
            "const" => Const,
            "type" => Type,
            "var" => Var,
            "procedure" => Procedure,
            "function" => Function,
            "begin" => Begin,
            "case" => Case,
            "end" => End,
            "if" => If,
            "then" => Then,
            "else" => Else,
            "while" => While,
            "do" => Do,
            "repeat" => Repeat,
            "until" => Until,
            "for" => For,
            "to" => To,
            "downto" => Downto,
            "goto" => Goto,
            "of" => Of,
            "array" => Array,
            "div" => Div,
            "mod" => Mod,
            "and" => And,
            "or" => Or,
            "not" => Not,
            "true" => True,
            "false" => False,
            _ => return None,
        })
    }

    /// A short human-readable description, used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            IntLit(n) => format!("integer literal `{n}`"),
            RealLit(x) => format!("real literal `{x}`"),
            StrLit(s) => format!("string literal '{s}'"),
            Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        use TokenKind::*;
        match self {
            Program => "program",
            Label => "label",
            Const => "const",
            Type => "type",
            Var => "var",
            Procedure => "procedure",
            Function => "function",
            Begin => "begin",
            Case => "case",
            End => "end",
            If => "if",
            Then => "then",
            Else => "else",
            While => "while",
            Do => "do",
            Repeat => "repeat",
            Until => "until",
            For => "for",
            To => "to",
            Downto => "downto",
            Goto => "goto",
            Of => "of",
            Array => "array",
            Div => "div",
            Mod => "mod",
            And => "and",
            Or => "or",
            Not => "not",
            True => "true",
            False => "false",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Eq => "=",
            Ne => "<>",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Assign => ":=",
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            Comma => ",",
            Semicolon => ";",
            Colon => ":",
            Dot => ".",
            DotDot => "..",
            Ident(_) | IntLit(_) | RealLit(_) | StrLit(_) | Eof => unreachable!(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(TokenKind::keyword("BEGIN"), Some(TokenKind::Begin));
        assert_eq!(TokenKind::keyword("Begin"), Some(TokenKind::Begin));
        assert_eq!(TokenKind::keyword("begin"), Some(TokenKind::Begin));
        assert_eq!(TokenKind::keyword("beginx"), None);
    }

    #[test]
    fn describe_is_never_empty() {
        for kind in [
            TokenKind::Ident("x".into()),
            TokenKind::IntLit(3),
            TokenKind::Assign,
            TokenKind::Eof,
        ] {
            assert!(!kind.describe().is_empty());
        }
    }
}
