//! Control-flow graph lowering.
//!
//! Every procedure body (and the main program body) lowers to a basic-block
//! CFG over a *resolved* instruction set: names are [`VarId`]s, callees are
//! [`ProcId`]s, constants are inlined. The same CFG drives
//!
//! * the interpreter ([`crate::interp`]), which is what makes `goto` —
//!   including non-local `goto` out of nested procedures — executable;
//! * the data-flow analyses and slicers in the `gadt-analysis` crate.
//!
//! Loops are first-class: the paper treats a loop as a debuggable *unit*
//! just like a procedure (§5.1), so each loop gets a [`LoopId`] and every
//! block records the stack of loops containing it. The interpreter raises
//! loop-enter/iterate/exit events by diffing those stacks across jumps,
//! which stays correct even when a `goto` exits a loop sideways.
//!
//! Statement ids ([`StmtId`]) survive lowering on every instruction and
//! terminator, so slices (statement-id sets) map between source, CFG, and
//! dynamic traces.

use crate::ast::{BinOp, Expr, ExprKind, ForDir, Stmt, StmtId, StmtKind, UnOp};
use crate::sema::{for_var_key, Intrinsic, Module, NameRes, ProcId, VarId};
use crate::span::Span;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// Index of a basic block within one procedure's CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Unique id of a loop unit (program-wide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// A resolved expression: names replaced by ids, constants inlined.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// A literal value (includes folded constants).
    Lit(Value),
    /// A scalar or whole-array variable read.
    Var(VarId),
    /// `base[index]`.
    Index {
        /// Array variable.
        base: VarId,
        /// Index expression.
        index: Box<RExpr>,
    },
    /// A user function call inside an expression.
    Call {
        /// Callee.
        callee: ProcId,
        /// Arguments, matching the callee's parameter modes.
        args: Vec<CallArg>,
    },
    /// A built-in function call.
    Intrinsic {
        /// Which intrinsic.
        which: Intrinsic,
        /// Its single argument.
        arg: Box<RExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<RExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<RExpr>,
        /// Right operand.
        rhs: Box<RExpr>,
    },
}

/// A resolved assignable place.
#[derive(Debug, Clone, PartialEq)]
pub struct Place {
    /// Target variable.
    pub var: VarId,
    /// `Some(i)` for an array element.
    pub index: Option<Box<RExpr>>,
}

impl Place {
    /// A whole-variable place.
    pub fn var(var: VarId) -> Place {
        Place { var, index: None }
    }
}

/// One actual argument of a call.
#[derive(Debug, Clone, PartialEq)]
pub enum CallArg {
    /// Passed by value (`Value`/`In` modes).
    Value(RExpr),
    /// Passed by reference (`Var`/`Out` modes).
    Ref(Place),
}

/// A non-branching instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// What the instruction does.
    pub kind: InstrKind,
    /// The source statement this instruction came from.
    pub stmt: StmtId,
    /// Source span.
    pub span: Span,
}

/// Instruction kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum InstrKind {
    /// `place := expr`.
    Assign {
        /// Target.
        lhs: Place,
        /// Source expression.
        rhs: RExpr,
    },
    /// A procedure call statement.
    Call {
        /// Callee.
        callee: ProcId,
        /// Arguments.
        args: Vec<CallArg>,
    },
    /// Read one value from the input stream into `target`.
    Read {
        /// Destination.
        target: Place,
    },
    /// Write values to the output stream.
    Write {
        /// Values to print.
        args: Vec<RExpr>,
        /// Whether to append a newline.
        newline: bool,
    },
}

/// A block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean expression.
    Branch {
        /// Condition.
        cond: RExpr,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
        /// Originating statement (the `if`/`while`/`for`/`repeat`).
        stmt: StmtId,
    },
    /// Return from the procedure.
    Return,
    /// A non-local `goto` to a label owned by an enclosing procedure
    /// (§6's "global goto"; removed by the transformation phase).
    NonLocalGoto {
        /// The procedure lexically owning the label.
        owner: ProcId,
        /// Normalized label name.
        label: String,
        /// The `goto` statement.
        stmt: StmtId,
    },
}

impl Terminator {
    /// Successor blocks within the same procedure.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return | Terminator::NonLocalGoto { .. } => vec![],
        }
    }

    /// The statement id attached to this terminator, if any.
    pub fn stmt(&self) -> Option<StmtId> {
        match self {
            Terminator::Branch { stmt, .. } | Terminator::NonLocalGoto { stmt, .. } => Some(*stmt),
            _ => None,
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Straight-line instructions.
    pub instrs: Vec<Instr>,
    /// How the block ends.
    pub term: Terminator,
    /// Stack of loops containing this block, outermost first.
    pub loops: Vec<LoopId>,
}

/// A procedure's CFG.
#[derive(Debug, Clone)]
pub struct ProcCfg {
    /// Which procedure this is.
    pub proc: ProcId,
    /// Blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// The entry block (always block 0).
    pub entry: BlockId,
    /// Blocks that labels resolve to (normalized label name → block),
    /// used to execute `goto` — including non-local gotos arriving from
    /// nested procedures.
    pub labels: HashMap<String, BlockId>,
}

impl ProcCfg {
    /// The block with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Predecessor map (successor edges reversed).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, b) in self.iter() {
            for s in b.term.successors() {
                preds[s.0 as usize].push(id);
            }
        }
        preds
    }
}

/// Metadata about one loop unit.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The loop's id.
    pub id: LoopId,
    /// The procedure containing the loop.
    pub proc: ProcId,
    /// The source `while`/`for`/`repeat` statement.
    pub stmt: StmtId,
    /// The loop's header block (jumping here from inside the loop is a new
    /// iteration).
    pub header: BlockId,
}

/// The CFGs of all procedures in a module.
#[derive(Debug, Clone)]
pub struct ProgramCfg {
    /// Per-procedure CFGs, indexed by [`ProcId`].
    pub procs: Vec<ProcCfg>,
    /// All loop units.
    pub loops: Vec<LoopInfo>,
}

impl ProgramCfg {
    /// The CFG of one procedure.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn proc(&self, id: ProcId) -> &ProcCfg {
        &self.procs[id.0 as usize]
    }

    /// Loop metadata by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.0 as usize]
    }

    /// Total number of instructions, a rough program-size metric used by
    /// the transformation-growth experiment (E9).
    pub fn instr_count(&self) -> usize {
        self.procs
            .iter()
            .flat_map(|p| &p.blocks)
            .map(|b| b.instrs.len() + 1)
            .sum()
    }
}

fn const_to_value(c: &crate::ast::ConstValue) -> Value {
    match c {
        crate::ast::ConstValue::Int(n) => Value::Int(*n),
        crate::ast::ConstValue::Real(x) => Value::Real(*x),
        crate::ast::ConstValue::Bool(b) => Value::Bool(*b),
        crate::ast::ConstValue::Str(s) => match crate::sema::single_char(s) {
            Some(c) => Value::Char(c),
            None => Value::Str(s.clone()),
        },
    }
}

/// Lowers every procedure of a module to CFG form.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, cfg::lower};
/// let m = compile("program t; var x: integer; begin x := 1 end.")?;
/// let cfg = lower(&m);
/// assert_eq!(cfg.procs.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn lower(module: &Module) -> ProgramCfg {
    let mut loops = Vec::new();
    let mut procs = Vec::new();
    for info in &module.procs {
        let body = module.proc_body(info.id);
        let mut lw = Lowerer::new(module, info.id, &mut loops);
        let cfg = lw.lower_body(body);
        procs.push(cfg);
    }
    ProgramCfg { procs, loops }
}

struct Lowerer<'m> {
    module: &'m Module,
    proc: ProcId,
    blocks: Vec<BasicBlock>,
    cur: BlockId,
    /// Whether the current block already has a terminator.
    terminated: bool,
    label_blocks: HashMap<String, BlockId>,
    loop_stack: Vec<LoopId>,
    loops: &'m mut Vec<LoopInfo>,
}

impl<'m> Lowerer<'m> {
    fn new(module: &'m Module, proc: ProcId, loops: &'m mut Vec<LoopInfo>) -> Self {
        Lowerer {
            module,
            proc,
            blocks: vec![BasicBlock {
                instrs: Vec::new(),
                term: Terminator::Return,
                loops: Vec::new(),
            }],
            cur: BlockId(0),
            terminated: false,
            label_blocks: HashMap::new(),
            loop_stack: Vec::new(),
            loops,
        }
    }

    fn lower_body(&mut self, body: &[Stmt]) -> ProcCfg {
        for s in body {
            self.stmt(s);
        }
        self.terminate(Terminator::Return);
        ProcCfg {
            proc: self.proc,
            blocks: std::mem::take(&mut self.blocks),
            entry: BlockId(0),
            labels: std::mem::take(&mut self.label_blocks),
        }
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            instrs: Vec::new(),
            term: Terminator::Return,
            loops: self.loop_stack.clone(),
        });
        id
    }

    fn switch_to(&mut self, b: BlockId) {
        self.cur = b;
        self.terminated = false;
        // A label block created before entering/leaving loops gets its loop
        // context fixed to the context at switch time (the lexical one).
        self.blocks[b.0 as usize].loops = self.loop_stack.clone();
    }

    fn emit(&mut self, kind: InstrKind, stmt: StmtId, span: Span) {
        if self.terminated {
            // Unreachable code after a goto: park it in a fresh block.
            let b = self.new_block();
            self.switch_to(b);
        }
        self.blocks[self.cur.0 as usize]
            .instrs
            .push(Instr { kind, stmt, span });
    }

    fn terminate(&mut self, term: Terminator) {
        if !self.terminated {
            self.blocks[self.cur.0 as usize].term = term;
            self.terminated = true;
        }
    }

    fn label_block(&mut self, key: &str) -> BlockId {
        if let Some(&b) = self.label_blocks.get(key) {
            return b;
        }
        let b = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            instrs: Vec::new(),
            term: Terminator::Return,
            loops: Vec::new(),
        });
        self.label_blocks.insert(key.to_string(), b);
        b
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Assign { lhs, rhs } => {
                let place = self.place_of_lvalue(lhs);
                let rhs = self.expr(rhs);
                self.emit(InstrKind::Assign { lhs: place, rhs }, s.id, s.span);
            }
            StmtKind::Call { args, .. } => {
                let callee = self.module.call_res[&s.id];
                let cargs = self.call_args(callee, args);
                self.emit(
                    InstrKind::Call {
                        callee,
                        args: cargs,
                    },
                    s.id,
                    s.span,
                );
            }
            StmtKind::Compound(stmts) => {
                for st in stmts {
                    self.stmt(st);
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.expr(cond);
                let then_bb = self.new_block();
                let join = self.new_block();
                let else_bb = if else_branch.is_some() {
                    self.new_block()
                } else {
                    join
                };
                self.terminate(Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                    stmt: s.id,
                });
                self.switch_to(then_bb);
                self.stmt(then_branch);
                self.terminate(Terminator::Jump(join));
                if let Some(e) = else_branch {
                    self.switch_to(else_bb);
                    self.stmt(e);
                    self.terminate(Terminator::Jump(join));
                }
                self.switch_to(join);
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            } => {
                // tmp := scrutinee; chain of equality branches.
                let tmp = self.module.case_temps[&s.id];
                let sval = self.expr(scrutinee);
                self.emit(
                    InstrKind::Assign {
                        lhs: Place::var(tmp),
                        rhs: sval,
                    },
                    s.id,
                    s.span,
                );
                let join = self.new_block();
                for arm in arms {
                    // cond: tmp = c1 or tmp = c2 …
                    let mut cond: Option<RExpr> = None;
                    for label in &arm.labels {
                        let lit = const_to_value(label);
                        let test = RExpr::Binary {
                            op: BinOp::Eq,
                            lhs: Box::new(RExpr::Var(tmp)),
                            rhs: Box::new(RExpr::Lit(lit)),
                        };
                        cond = Some(match cond {
                            None => test,
                            Some(acc) => RExpr::Binary {
                                op: BinOp::Or,
                                lhs: Box::new(acc),
                                rhs: Box::new(test),
                            },
                        });
                    }
                    let arm_bb = self.new_block();
                    let next_bb = self.new_block();
                    self.terminate(Terminator::Branch {
                        cond: cond.expect("case arm has at least one label"),
                        then_bb: arm_bb,
                        else_bb: next_bb,
                        stmt: s.id,
                    });
                    self.switch_to(arm_bb);
                    self.stmt(&arm.stmt);
                    self.terminate(Terminator::Jump(join));
                    self.switch_to(next_bb);
                }
                if let Some(e) = else_arm {
                    self.stmt(e);
                }
                self.terminate(Terminator::Jump(join));
                self.switch_to(join);
            }
            StmtKind::While { cond, body } => {
                let lid = self.begin_loop(s.id);
                let header = self.new_block_in_loop();
                self.loops[lid.0 as usize].header = header;
                self.terminate(Terminator::Jump(header));
                self.switch_to(header);
                let cond = self.expr(cond);
                let body_bb = self.new_block_in_loop();
                // Exit block lives outside the loop.
                self.loop_stack.pop();
                let exit = self.new_block();
                self.loop_stack.push(lid);
                self.terminate(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: exit,
                    stmt: s.id,
                });
                self.switch_to(body_bb);
                self.stmt(body);
                self.terminate(Terminator::Jump(header));
                self.end_loop();
                self.switch_to(exit);
            }
            StmtKind::Repeat { body, cond } => {
                let lid = self.begin_loop(s.id);
                let header = self.new_block_in_loop();
                self.loops[lid.0 as usize].header = header;
                self.terminate(Terminator::Jump(header));
                self.switch_to(header);
                for st in body {
                    self.stmt(st);
                }
                let cond = self.expr(cond);
                self.loop_stack.pop();
                let exit = self.new_block();
                self.loop_stack.push(lid);
                // `repeat … until cond` exits when cond is true.
                self.terminate(Terminator::Branch {
                    cond,
                    then_bb: exit,
                    else_bb: header,
                    stmt: s.id,
                });
                self.end_loop();
                self.switch_to(exit);
            }
            StmtKind::For {
                var: _,
                from,
                dir,
                to,
                body,
            } => {
                let ctrl = match self.module.res[&for_var_key(s.id)] {
                    NameRes::Var(v) => v,
                    _ => unreachable!("for-var resolution is always a variable"),
                };
                let limit = self.module.for_temps[&s.id];
                let from = self.expr(from);
                let to = self.expr(to);
                // limit := to; i := from  (bounds evaluated once)
                self.emit(
                    InstrKind::Assign {
                        lhs: Place::var(limit),
                        rhs: to,
                    },
                    s.id,
                    s.span,
                );
                self.emit(
                    InstrKind::Assign {
                        lhs: Place::var(ctrl),
                        rhs: from,
                    },
                    s.id,
                    s.span,
                );
                let lid = self.begin_loop(s.id);
                let header = self.new_block_in_loop();
                self.loops[lid.0 as usize].header = header;
                self.terminate(Terminator::Jump(header));
                self.switch_to(header);
                let cmp = match dir {
                    ForDir::To => BinOp::Le,
                    ForDir::Downto => BinOp::Ge,
                };
                let cond = RExpr::Binary {
                    op: cmp,
                    lhs: Box::new(RExpr::Var(ctrl)),
                    rhs: Box::new(RExpr::Var(limit)),
                };
                let body_bb = self.new_block_in_loop();
                self.loop_stack.pop();
                let exit = self.new_block();
                self.loop_stack.push(lid);
                self.terminate(Terminator::Branch {
                    cond,
                    then_bb: body_bb,
                    else_bb: exit,
                    stmt: s.id,
                });
                self.switch_to(body_bb);
                self.stmt(body);
                // i := i ± 1
                let step = match dir {
                    ForDir::To => BinOp::Add,
                    ForDir::Downto => BinOp::Sub,
                };
                self.emit(
                    InstrKind::Assign {
                        lhs: Place::var(ctrl),
                        rhs: RExpr::Binary {
                            op: step,
                            lhs: Box::new(RExpr::Var(ctrl)),
                            rhs: Box::new(RExpr::Lit(Value::Int(1))),
                        },
                    },
                    s.id,
                    s.span,
                );
                self.terminate(Terminator::Jump(header));
                self.end_loop();
                self.switch_to(exit);
            }
            StmtKind::Goto(_) => {
                let (owner, label) = self.module.goto_res[&s.id].clone();
                if owner == self.proc {
                    let target = self.label_block(&label);
                    self.terminate(Terminator::Jump(target));
                } else {
                    self.terminate(Terminator::NonLocalGoto {
                        owner,
                        label,
                        stmt: s.id,
                    });
                }
            }
            StmtKind::Labeled { label, stmt } => {
                let target = self.label_block(&label.key());
                self.terminate(Terminator::Jump(target));
                self.switch_to(target);
                self.stmt(stmt);
            }
            StmtKind::Read { args, .. } => {
                for lv in args {
                    let target = self.place_of_lvalue(lv);
                    self.emit(InstrKind::Read { target }, s.id, s.span);
                }
            }
            StmtKind::Write { args, newline } => {
                let args = args.iter().map(|e| self.expr(e)).collect();
                self.emit(
                    InstrKind::Write {
                        args,
                        newline: *newline,
                    },
                    s.id,
                    s.span,
                );
            }
        }
    }

    fn begin_loop(&mut self, stmt: StmtId) -> LoopId {
        let lid = LoopId(self.loops.len() as u32);
        self.loops.push(LoopInfo {
            id: lid,
            proc: self.proc,
            stmt,
            header: BlockId(0), // patched by caller
        });
        self.loop_stack.push(lid);
        lid
    }

    fn end_loop(&mut self) {
        self.loop_stack.pop();
    }

    fn new_block_in_loop(&mut self) -> BlockId {
        self.new_block()
    }

    fn place_of_lvalue(&mut self, lv: &crate::ast::LValue) -> Place {
        let var = match &self.module.res[&lv.id] {
            NameRes::Var(v) => *v,
            other => unreachable!("lvalue resolved to non-variable {other:?}"),
        };
        let index = lv.index.as_ref().map(|e| Box::new(self.expr(e)));
        Place { var, index }
    }

    fn call_args(&mut self, callee: ProcId, args: &[Expr]) -> Vec<CallArg> {
        let params = self.module.proc(callee).params.clone();
        params
            .iter()
            .zip(args)
            .map(|(p, a)| {
                let mode = self
                    .module
                    .var(*p)
                    .param_mode()
                    .expect("callee param has a mode");
                if mode.is_reference() {
                    CallArg::Ref(self.place_of_arg(a))
                } else {
                    CallArg::Value(self.expr(a))
                }
            })
            .collect()
    }

    fn place_of_arg(&mut self, e: &Expr) -> Place {
        match &e.kind {
            ExprKind::Name(_) => match &self.module.res[&e.id] {
                NameRes::Var(v) => Place::var(*v),
                other => unreachable!("reference arg resolved to {other:?}"),
            },
            ExprKind::Index { index, .. } => match &self.module.res[&e.id] {
                NameRes::Var(v) => Place {
                    var: *v,
                    index: Some(Box::new(self.expr(index))),
                },
                other => unreachable!("reference arg resolved to {other:?}"),
            },
            other => unreachable!("reference arg is not an lvalue: {other:?}"),
        }
    }

    fn expr(&mut self, e: &Expr) -> RExpr {
        match &e.kind {
            ExprKind::IntLit(n) => RExpr::Lit(Value::Int(*n)),
            ExprKind::RealLit(x) => RExpr::Lit(Value::Real(*x)),
            ExprKind::BoolLit(b) => RExpr::Lit(Value::Bool(*b)),
            ExprKind::StrLit(s) => {
                if s.chars().count() == 1 {
                    RExpr::Lit(Value::Char(s.chars().next().expect("nonempty")))
                } else {
                    RExpr::Lit(Value::Str(s.clone()))
                }
            }
            ExprKind::Name(_) => match &self.module.res[&e.id] {
                NameRes::Var(v) => RExpr::Var(*v),
                NameRes::Const(value) => RExpr::Lit(value.clone()),
                NameRes::Proc(pid) => RExpr::Call {
                    callee: *pid,
                    args: vec![],
                },
                NameRes::Intrinsic(_) => unreachable!("bare intrinsic name"),
            },
            ExprKind::Index { index, .. } => match &self.module.res[&e.id] {
                NameRes::Var(v) => RExpr::Index {
                    base: *v,
                    index: Box::new(self.expr(index)),
                },
                other => unreachable!("index base resolved to {other:?}"),
            },
            ExprKind::Call { args, .. } => match self.module.res[&e.id].clone() {
                NameRes::Proc(pid) => RExpr::Call {
                    callee: pid,
                    args: self.call_args(pid, args),
                },
                NameRes::Intrinsic(which) => RExpr::Intrinsic {
                    which,
                    arg: Box::new(self.expr(&args[0])),
                },
                other => unreachable!("call resolved to {other:?}"),
            },
            ExprKind::Unary { op, operand } => RExpr::Unary {
                op: *op,
                operand: Box::new(self.expr(operand)),
            },
            ExprKind::Binary { op, lhs, rhs } => RExpr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
        }
    }
}

impl RExpr {
    /// Collects every variable read by this expression (array reads count
    /// the base variable plus index uses; calls count their value-argument
    /// uses and reference arguments' index uses).
    pub fn collect_uses(&self, out: &mut Vec<VarId>) {
        match self {
            RExpr::Lit(_) => {}
            RExpr::Var(v) => out.push(*v),
            RExpr::Index { base, index } => {
                out.push(*base);
                index.collect_uses(out);
            }
            RExpr::Call { args, .. } => {
                for a in args {
                    match a {
                        CallArg::Value(e) => e.collect_uses(out),
                        CallArg::Ref(p) => {
                            // The callee may read through Var-mode refs;
                            // conservatively count the base as used.
                            out.push(p.var);
                            if let Some(i) = &p.index {
                                i.collect_uses(out);
                            }
                        }
                    }
                }
            }
            RExpr::Intrinsic { arg, .. } => arg.collect_uses(out),
            RExpr::Unary { operand, .. } => operand.collect_uses(out),
            RExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_uses(out);
                rhs.collect_uses(out);
            }
        }
    }

    /// Collects the callees of every function call inside this expression.
    pub fn collect_calls(&self, out: &mut Vec<ProcId>) {
        match self {
            RExpr::Call { callee, args } => {
                out.push(*callee);
                for a in args {
                    if let CallArg::Value(e) = a {
                        e.collect_calls(out);
                    } else if let CallArg::Ref(p) = a {
                        if let Some(i) = &p.index {
                            i.collect_calls(out);
                        }
                    }
                }
            }
            RExpr::Index { index, .. } => index.collect_calls(out),
            RExpr::Intrinsic { arg, .. } => arg.collect_calls(out),
            RExpr::Unary { operand, .. } => operand.collect_calls(out),
            RExpr::Binary { lhs, rhs, .. } => {
                lhs.collect_calls(out);
                rhs.collect_calls(out);
            }
            RExpr::Lit(_) | RExpr::Var(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::{compile, MAIN_PROC};

    fn cfg_of(src: &str) -> (Module, ProgramCfg) {
        let m = compile(src).expect("compile");
        let c = lower(&m);
        (m, c)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (_, c) = cfg_of("program t; var x: integer; begin x := 1; x := x + 1 end.");
        let main = c.proc(MAIN_PROC);
        assert_eq!(main.blocks.len(), 1);
        assert_eq!(main.blocks[0].instrs.len(), 2);
        assert_eq!(main.blocks[0].term, Terminator::Return);
    }

    #[test]
    fn if_produces_diamond() {
        let (_, c) = cfg_of(
            "program t; var x: integer;
             begin if x = 0 then x := 1 else x := 2 end.",
        );
        let main = c.proc(MAIN_PROC);
        // entry + then + join + else
        assert_eq!(main.blocks.len(), 4);
        assert!(matches!(main.blocks[0].term, Terminator::Branch { .. }));
    }

    #[test]
    fn while_loop_blocks_are_tagged() {
        let (_, c) = cfg_of(
            "program t; var x: integer;
             begin while x < 10 do x := x + 1; x := 0 end.",
        );
        assert_eq!(c.loops.len(), 1);
        let main = c.proc(MAIN_PROC);
        let header = c.loops[0].header;
        assert_eq!(main.block(header).loops, vec![LoopId(0)]);
        // The exit block is not in the loop.
        let Terminator::Branch { else_bb, .. } = &main.block(header).term else {
            panic!("header must branch")
        };
        assert!(main.block(*else_bb).loops.is_empty());
    }

    #[test]
    fn for_loop_evaluates_limit_once() {
        let (m, c) = cfg_of(
            "program t; var i, n, s: integer;
             begin n := 3; for i := 1 to n do s := s + i end.",
        );
        let main = c.proc(MAIN_PROC);
        // First block must assign limit then control variable.
        let instrs = &main.blocks[0].instrs;
        assert!(instrs.len() >= 3);
        let InstrKind::Assign { lhs, .. } = &instrs[1].kind else {
            panic!()
        };
        assert_eq!(m.var(lhs.var).kind, crate::sema::VarKind::Temp);
    }

    #[test]
    fn nested_loops_stack() {
        let (_, c) = cfg_of(
            "program t; var i, j, s: integer;
             begin
               for i := 1 to 3 do
                 for j := 1 to 3 do
                   s := s + 1
             end.",
        );
        assert_eq!(c.loops.len(), 2);
        let main = c.proc(MAIN_PROC);
        let inner_header = c.loops[1].header;
        assert_eq!(main.block(inner_header).loops, vec![LoopId(0), LoopId(1)]);
    }

    #[test]
    fn local_goto_becomes_jump() {
        let (_, c) = cfg_of(
            "program t; label 9; var x: integer;
             begin x := 1; goto 9; x := 2; 9: x := 3 end.",
        );
        let main = c.proc(MAIN_PROC);
        let has_jump_to_label = main
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::Jump(_)));
        assert!(has_jump_to_label);
        // `x := 2` is parked in an unreachable block but still present.
        let total_instrs: usize = main.blocks.iter().map(|b| b.instrs.len()).sum();
        assert_eq!(total_instrs, 3);
    }

    #[test]
    fn nonlocal_goto_becomes_special_terminator() {
        let (m, c) = cfg_of(crate::testprogs::SECTION6_GOTO);
        let q = m.proc_by_name("q").unwrap();
        let has_nonlocal = c
            .proc(q)
            .blocks
            .iter()
            .any(|b| matches!(b.term, Terminator::NonLocalGoto { .. }));
        assert!(has_nonlocal);
    }

    #[test]
    fn call_args_follow_modes() {
        let (m, c) = cfg_of(
            "program t; var x, y: integer;
             procedure p(a: integer; var b: integer); begin b := a end;
             begin p(x + 1, y) end.",
        );
        let main = c.proc(MAIN_PROC);
        let InstrKind::Call { callee, args } = &main.blocks[0].instrs[0].kind else {
            panic!()
        };
        assert_eq!(*callee, m.proc_by_name("p").unwrap());
        assert!(matches!(args[0], CallArg::Value(_)));
        assert!(matches!(args[1], CallArg::Ref(_)));
    }

    #[test]
    fn constants_are_inlined() {
        let (_, c) = cfg_of("program t; const k = 5; var x: integer; begin x := k end.");
        let main = c.proc(MAIN_PROC);
        let InstrKind::Assign { rhs, .. } = &main.blocks[0].instrs[0].kind else {
            panic!()
        };
        assert_eq!(*rhs, RExpr::Lit(Value::Int(5)));
    }

    #[test]
    fn read_splits_per_target() {
        let (_, c) = cfg_of("program t; var x, y: integer; begin read(x, y) end.");
        let main = c.proc(MAIN_PROC);
        assert_eq!(main.blocks[0].instrs.len(), 2);
        assert!(main.blocks[0]
            .instrs
            .iter()
            .all(|i| matches!(i.kind, InstrKind::Read { .. })));
    }

    #[test]
    fn collect_uses_finds_nested_reads() {
        let (m, c) = cfg_of(
            "program t; var a: array[1..5] of integer; i, x: integer;
             begin x := a[i + 1] * 2 end.",
        );
        let main = c.proc(MAIN_PROC);
        let InstrKind::Assign { rhs, .. } = &main.blocks[0].instrs[0].kind else {
            panic!()
        };
        let mut uses = Vec::new();
        rhs.collect_uses(&mut uses);
        let a = m.var_in_scope(MAIN_PROC, "a").unwrap();
        let i = m.var_in_scope(MAIN_PROC, "i").unwrap();
        assert!(uses.contains(&a));
        assert!(uses.contains(&i));
    }

    #[test]
    fn repeat_branches_back_on_false() {
        let (_, c) = cfg_of(
            "program t; var x: integer;
             begin x := 0; repeat x := x + 1 until x = 3 end.",
        );
        assert_eq!(c.loops.len(), 1);
        let main = c.proc(MAIN_PROC);
        let header = c.loops[0].header;
        // Some block in the loop branches with else → header.
        let branches_back = main
            .blocks
            .iter()
            .any(|b| matches!(&b.term, Terminator::Branch { else_bb, .. } if *else_bb == header));
        assert!(branches_back);
    }

    #[test]
    fn sqrtest_lowers_fully() {
        let (m, c) = cfg_of(crate::testprogs::SQRTEST);
        assert_eq!(c.procs.len(), m.procs.len());
        assert_eq!(c.loops.len(), 1); // the for-loop in arrsum
        let arrsum = m.proc_by_name("arrsum").unwrap();
        assert_eq!(c.loops[0].proc, arrsum);
    }
}
