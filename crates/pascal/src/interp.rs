//! CFG interpreter with monitor hooks.
//!
//! The interpreter executes the lowered [`crate::cfg`] form, which is what
//! makes `goto` — including the paper's "global gotos" out of nested
//! procedures — runnable. It is fully deterministic: input comes from a
//! queue, output goes to a buffer, variables are zero-initialized.
//!
//! A [`Monitor`] receives a stream of [`Event`]s:
//!
//! * call enter/exit with In/Out parameter values *and* the non-local
//!   variables each invocation read or wrote (the paper's "variables which
//!   cause global side-effects within the unit", §5.2) — the raw material
//!   for execution trees;
//! * loop enter/iteration/exit, because the paper debugs loops as units;
//! * one [`Event::Step`] per executed instruction/branch with the memory
//!   locations defined and used — the raw material for dynamic slicing.
//!
//! Var-parameters are true references (bindings resolve through parameter
//! chains to an ultimate location at call time), so the side-effect
//! behaviour the paper's transformations target is faithfully modeled.

use crate::ast::{BinOp, StmtId, UnOp};
use crate::cfg::{
    lower, BlockId, CallArg, Instr, InstrKind, LoopId, ProgramCfg, RExpr, Terminator,
};
use crate::error::{Diagnostic, Result, Stage};
use crate::sema::{Intrinsic, Module, ProcId, VarId, VarKind, MAIN_PROC};
use crate::span::Span;
use crate::types::Type;
use crate::value::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A concrete memory location at run time.
///
/// `frame` is a monotonically increasing frame instance id (so recursion
/// instances are distinct); `elem` is `Some(i)` for one array element and
/// `None` for a whole scalar/array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemLoc {
    /// Owning frame instance.
    pub frame: u64,
    /// The variable.
    pub var: VarId,
    /// Array element index, if element-granular.
    pub elem: Option<i64>,
}

/// Events delivered to a [`Monitor`] during execution.
#[derive(Debug, Clone)]
pub enum Event<'a> {
    /// A procedure/function invocation begins.
    CallEnter {
        /// Dynamic call instance id (0 is the main program).
        call: u64,
        /// New frame instance id.
        frame: u64,
        /// Callee.
        proc: ProcId,
        /// The call statement at the call site (`None` for main and for
        /// calls inside expressions, which carry the enclosing statement).
        site_stmt: Option<StmtId>,
        /// Parameter values at entry: value params as passed, reference
        /// params showing the referenced location's incoming value.
        args: &'a [(VarId, Value)],
        /// Reference-parameter bindings: the ultimate memory location each
        /// `var`/`out` parameter aliases (needed to resolve "output k of
        /// this call" criteria precisely).
        bindings: &'a [(VarId, MemLoc)],
        /// Current dynamic call depth (main = 0).
        depth: usize,
    },
    /// A procedure/function invocation ends.
    CallExit {
        /// Matching call instance id.
        call: u64,
        /// Matching frame instance id.
        frame: u64,
        /// Callee.
        proc: ProcId,
        /// Output values: reference parameters' final values, plus the
        /// function result under the result pseudo-variable.
        outs: &'a [(VarId, Value)],
        /// Non-local variables read (before any write) during the
        /// invocation's dynamic extent, with the value first read.
        nonlocal_reads: &'a [(VarId, Value)],
        /// Non-local variables written during the invocation, with their
        /// final values at exit.
        nonlocal_writes: &'a [(VarId, Value)],
        /// Reference parameters whose incoming value was read before any
        /// write (so the paper's queries can show them as `In` values).
        param_reads: &'a [VarId],
        /// Whether the invocation was aborted by a non-local goto.
        via_goto: bool,
    },
    /// Control entered a loop unit (iteration 1 starts).
    LoopEnter {
        /// The loop.
        loop_id: LoopId,
        /// Frame instance executing the loop.
        frame: u64,
        /// Dynamic loop instance id.
        instance: u64,
    },
    /// A new iteration begins (iteration ≥ 2): values of the variables the
    /// loop body assigns, as of the iteration boundary.
    LoopIter {
        /// The loop.
        loop_id: LoopId,
        /// Frame instance.
        frame: u64,
        /// Dynamic loop instance id.
        instance: u64,
        /// Iteration number now starting (2, 3, …).
        iteration: u64,
        /// Snapshot of loop-assigned variables.
        vars: &'a [(VarId, Value)],
    },
    /// Control left a loop unit.
    LoopExit {
        /// The loop.
        loop_id: LoopId,
        /// Frame instance.
        frame: u64,
        /// Dynamic loop instance id.
        instance: u64,
        /// Total header arrivals (≥ 1).
        iterations: u64,
        /// Snapshot of loop-assigned variables at exit.
        vars: &'a [(VarId, Value)],
    },
    /// One instruction or branch executed.
    Step {
        /// Global event index (monotone).
        idx: u64,
        /// Executing frame instance.
        frame: u64,
        /// Executing procedure.
        proc: ProcId,
        /// Block within the procedure.
        block: BlockId,
        /// Instruction index within the block; `None` for the terminator.
        instr: Option<usize>,
        /// Source statement.
        stmt: StmtId,
        /// Locations defined.
        defs: &'a [MemLoc],
        /// Locations used.
        uses: &'a [MemLoc],
        /// For branches: the outcome. For other steps `None`.
        branch_taken: Option<bool>,
    },
}

/// Receives execution events. All methods have no-op defaults.
pub trait Monitor {
    /// Called for every event, in execution order.
    fn on_event(&mut self, module: &Module, event: &Event<'_>);
}

/// A monitor that ignores everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopMonitor;

impl Monitor for NoopMonitor {
    fn on_event(&mut self, _module: &Module, _event: &Event<'_>) {}
}

/// Result of a successful run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Captured `write`/`writeln` output.
    output: String,
    /// Number of step events executed.
    pub steps: u64,
    /// Final values of program-level (global) variables, by lowercase name.
    pub globals: HashMap<String, Value>,
}

impl Outcome {
    /// Assembles an outcome from engine-produced parts. Used by other
    /// execution engines (the bytecode VM in `gadt-vm`) that construct
    /// outcomes identical to this interpreter's.
    pub fn from_parts(output: String, steps: u64, globals: HashMap<String, Value>) -> Outcome {
        Outcome {
            output,
            steps,
            globals,
        }
    }

    /// The captured textual output.
    pub fn output_text(&self) -> &str {
        &self.output
    }

    /// Final value of a global variable, by case-insensitive name.
    pub fn global(&self, name: &str) -> Option<&Value> {
        self.globals.get(&name.to_ascii_lowercase())
    }
}

/// Result of running one procedure in isolation
/// ([`Interpreter::run_proc`]).
#[derive(Debug, Clone)]
pub struct ProcRun {
    /// Final values of reference parameters, in declaration order.
    pub outs: Vec<(VarId, Value)>,
    /// The function result, for functions.
    pub result: Option<Value>,
    /// Captured output.
    pub output: String,
    /// Steps executed.
    pub steps: u64,
}

/// Interpreter configuration limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum number of step events before aborting.
    pub max_steps: u64,
    /// Maximum dynamic call depth.
    pub max_depth: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_steps: 20_000_000,
            max_depth: 10_000,
        }
    }
}

struct FrameData {
    /// Monotonic frame instance id.
    id: u64,
    proc: ProcId,
    call: u64,
    vars: HashMap<VarId, Value>,
    /// Reference-parameter bindings to ultimate locations.
    bindings: HashMap<VarId, Loc>,
    /// Index (in the frame stack) of the lexically enclosing frame.
    static_link: Option<usize>,
    /// Active loops: (loop id, instance id, header arrivals).
    loop_stack: Vec<(LoopId, u64, u64)>,
    /// Non-local variables read before written: first-read values.
    nl_reads: Vec<(VarId, Value)>,
    /// Non-local variables written.
    nl_written: Vec<VarId>,
    /// Reference parameters whose incoming value was read before any
    /// write (these render as `In` in execution-tree queries).
    ref_read: Vec<VarId>,
    /// Reference parameters written so far.
    ref_written: Vec<VarId>,
    /// Where the call statement was (for CallEnter reporting).
    site_stmt: Option<StmtId>,
}

/// An absolute storage location: frame-stack index + variable + element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    frame_idx: usize,
    var: VarId,
    elem: Option<i64>,
    /// `Some(param)` when the location was reached through a reference-
    /// parameter binding (parameter-mediated accesses are not global side
    /// effects, and first-access kinds are tracked per parameter).
    via_param: Option<VarId>,
}

/// The Pascal interpreter.
///
/// See the [crate-level docs](crate) for a quickstart. Use
/// [`Interpreter::run_with`] to attach a [`Monitor`].
pub struct Interpreter<'m> {
    module: &'m Module,
    cfg: Arc<ProgramCfg>,
    input: VecDeque<Value>,
    output: String,
    limits: Limits,
    frames: Vec<FrameData>,
    next_frame: u64,
    next_call: u64,
    next_loop_instance: u64,
    steps: u64,
    /// Context of the instruction currently executing, used to attribute
    /// Step events for calls occurring inside expressions.
    cur_ctx: (BlockId, Option<usize>, StmtId),
    /// Cache: variables assigned inside each loop (for iteration
    /// snapshots).
    loop_vars: HashMap<LoopId, Vec<VarId>>,
}

impl<'m> std::fmt::Debug for Interpreter<'m> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("steps", &self.steps)
            .field("frames", &self.frames.len())
            .finish()
    }
}

fn rt_err(msg: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(Stage::Runtime, msg, span)
}

impl<'m> Interpreter<'m> {
    /// Creates an interpreter for a module (lowers its CFG internally; the
    /// lowering is deterministic, so block ids match any other `lower`
    /// of the same module).
    pub fn new(module: &'m Module) -> Self {
        Self::with_cfg(module, lower(module))
    }

    /// Creates an interpreter over an already-lowered CFG.
    pub fn with_cfg(module: &'m Module, cfg: ProgramCfg) -> Self {
        Self::with_shared_cfg(module, Arc::new(cfg))
    }

    /// Creates an interpreter sharing an already-lowered CFG (avoids
    /// cloning the CFG when many runs execute the same module — batch
    /// workers on different threads all point at one lowering).
    pub fn with_shared_cfg(module: &'m Module, cfg: Arc<ProgramCfg>) -> Self {
        Interpreter {
            module,
            cfg,
            input: VecDeque::new(),
            output: String::new(),
            limits: Limits::default(),
            frames: Vec::new(),
            next_frame: 0,
            next_call: 0,
            next_loop_instance: 0,
            steps: 0,
            cur_ctx: (BlockId(0), None, StmtId(0)),
            loop_vars: HashMap::new(),
        }
    }

    /// The lowered CFG being executed.
    pub fn cfg(&self) -> &ProgramCfg {
        &self.cfg
    }

    /// Replaces the execution limits.
    pub fn set_limits(&mut self, limits: Limits) {
        self.limits = limits;
    }

    /// Queues one input value for `read`.
    pub fn push_input(&mut self, v: Value) {
        self.input.push_back(v);
    }

    /// Queues one integer input.
    pub fn push_input_int(&mut self, n: i64) {
        self.input.push_back(Value::Int(n));
    }

    /// Queues many input values.
    pub fn set_input(&mut self, values: impl IntoIterator<Item = Value>) {
        self.input = values.into_iter().collect();
    }

    /// Runs the program to completion without a monitor.
    ///
    /// # Errors
    /// Returns a runtime [`Diagnostic`] on division by zero, array index
    /// out of bounds, exhausted input, arithmetic overflow, exceeded step
    /// or depth limits, or a non-local goto whose target is not active.
    pub fn run(&mut self) -> Result<Outcome> {
        self.run_with(&mut NoopMonitor)
    }

    /// Runs the program, delivering events to `monitor`.
    ///
    /// # Errors
    /// Same conditions as [`Interpreter::run`].
    pub fn run_with(&mut self, monitor: &mut dyn Monitor) -> Result<Outcome> {
        self.frames.clear();
        self.output.clear();
        self.steps = 0;
        self.next_frame = 0;
        self.next_call = 0;
        self.next_loop_instance = 0;

        self.push_frame(MAIN_PROC, None, HashMap::new(), HashMap::new(), None);
        self.fire_call_enter(monitor, &[]);
        let flow = self.exec_proc(monitor)?;
        debug_assert!(flow.is_none(), "main cannot exit via goto");
        // Capture globals before popping.
        let mut globals = HashMap::new();
        for v in self.module.vars_of(MAIN_PROC) {
            if v.kind == VarKind::Global {
                if let Some(val) = self.frames[0].vars.get(&v.id) {
                    globals.insert(v.name.to_ascii_lowercase(), val.clone());
                }
            }
        }
        self.fire_call_exit(monitor, false);
        self.frames.pop();
        Ok(Outcome {
            output: std::mem::take(&mut self.output),
            steps: self.steps,
            globals,
        })
    }

    /// Runs a single top-level procedure/function in isolation with the
    /// given argument values, without executing the main body — the entry
    /// point used by the T-GEN test runner to execute test cases against
    /// one unit.
    ///
    /// Globals are zero-initialized; reference parameters are backed by
    /// hidden storage whose final values appear in [`ProcRun::outs`].
    ///
    /// # Errors
    /// * the procedure is not declared at the program's top level (nested
    ///   procedures need their lexical parent's frame);
    /// * argument count/type mismatch;
    /// * any runtime error of [`Interpreter::run`].
    pub fn run_proc(&mut self, proc: ProcId, args: Vec<Value>) -> Result<ProcRun> {
        self.run_proc_with(proc, args, &mut NoopMonitor)
    }

    /// [`Interpreter::run_proc`] with a monitor attached.
    ///
    /// # Errors
    /// Same conditions as [`Interpreter::run_proc`].
    pub fn run_proc_with(
        &mut self,
        proc: ProcId,
        args: Vec<Value>,
        monitor: &mut dyn Monitor,
    ) -> Result<ProcRun> {
        let info = self.module.proc(proc).clone();
        if info.parent != Some(MAIN_PROC) {
            return Err(rt_err(
                format!("procedure `{}` is not declared at the top level", info.name),
                Span::dummy(),
            ));
        }
        if info.params.len() != args.len() {
            return Err(rt_err(
                format!(
                    "`{}` expects {} argument(s), got {}",
                    info.name,
                    info.params.len(),
                    args.len()
                ),
                Span::dummy(),
            ));
        }
        self.frames.clear();
        self.output.clear();
        self.steps = 0;
        self.next_frame = 0;
        self.next_call = 0;
        self.next_loop_instance = 0;

        self.push_frame(MAIN_PROC, None, HashMap::new(), HashMap::new(), None);
        self.fire_call_enter(monitor, &[]);

        let mut params = HashMap::new();
        let mut bindings = HashMap::new();
        let mut entry_args = Vec::new();
        for (&p, v) in info.params.iter().zip(args) {
            let pinfo = self.module.var(p).clone();
            let mode = pinfo.param_mode().expect("param mode");
            let v = match (&v, &pinfo.ty) {
                (Value::Int(n), Type::Real) => Value::Real(*n as f64),
                _ => v,
            };
            if !pinfo.ty.assignable_from(&v.type_of()) {
                return Err(rt_err(
                    format!(
                        "argument for `{}` has type `{}`, expected `{}`",
                        pinfo.name,
                        v.type_of(),
                        pinfo.ty
                    ),
                    Span::dummy(),
                ));
            }
            entry_args.push((p, v.clone()));
            if mode.is_reference() {
                // Hidden storage in the root frame, keyed by the param id.
                self.frames[0].vars.insert(p, v);
                bindings.insert(
                    p,
                    Loc {
                        frame_idx: 0,
                        var: p,
                        elem: None,
                        via_param: None,
                    },
                );
            } else {
                params.insert(p, v);
            }
        }
        self.push_frame(proc, Some(0), params, bindings, None);
        self.fire_call_enter(monitor, &entry_args);
        let flow = self.exec_proc(monitor)?;
        if flow.is_some() {
            return Err(rt_err(
                "non-local goto escaped an isolated procedure run",
                Span::dummy(),
            ));
        }
        let mut outs = Vec::new();
        for &p in &info.params {
            if self
                .module
                .var(p)
                .param_mode()
                .is_some_and(|m| m.passes_back())
            {
                if let Some(v) = self.frames[0].vars.get(&p) {
                    outs.push((p, v.clone()));
                }
            }
        }
        let result = info
            .result_var
            .and_then(|rv| self.top().vars.get(&rv).cloned());
        self.fire_call_exit(monitor, false);
        self.frames.pop();
        self.fire_call_exit(monitor, false);
        self.frames.pop();
        Ok(ProcRun {
            outs,
            result,
            output: std::mem::take(&mut self.output),
            steps: self.steps,
        })
    }

    // ------------------------------------------------------------------
    // Frames
    // ------------------------------------------------------------------

    fn push_frame(
        &mut self,
        proc: ProcId,
        static_link: Option<usize>,
        params: HashMap<VarId, Value>,
        bindings: HashMap<VarId, Loc>,
        site_stmt: Option<StmtId>,
    ) {
        let mut vars = HashMap::new();
        for v in self.module.vars_of(proc) {
            if !bindings.contains_key(&v.id) {
                vars.insert(v.id, Value::zero_of(&v.ty));
            }
        }
        for (k, val) in params {
            vars.insert(k, val);
        }
        let id = self.next_frame;
        self.next_frame += 1;
        let call = self.next_call;
        self.next_call += 1;
        self.frames.push(FrameData {
            id,
            proc,
            call,
            vars,
            bindings,
            static_link,
            loop_stack: Vec::new(),
            nl_reads: Vec::new(),
            nl_written: Vec::new(),
            ref_read: Vec::new(),
            ref_written: Vec::new(),
            site_stmt,
        });
    }

    fn top(&self) -> &FrameData {
        self.frames.last().expect("frame stack nonempty")
    }

    /// Resolves a variable reference in the current frame to an absolute
    /// location (following static links and reference bindings).
    fn resolve_var(&self, var: VarId) -> Loc {
        let top_idx = self.frames.len() - 1;
        let owner = self.module.var(var).owner;
        let mut idx = top_idx;
        loop {
            let f = &self.frames[idx];
            if f.proc == owner {
                if let Some(b) = f.bindings.get(&var) {
                    return Loc {
                        via_param: Some(var),
                        ..*b
                    };
                }
                return Loc {
                    frame_idx: idx,
                    var,
                    elem: None,
                    via_param: None,
                };
            }
            idx = f
                .static_link
                .expect("variable owner must be on the static chain");
        }
    }

    fn loc_with_elem(
        &mut self,
        var: VarId,
        index: Option<&RExpr>,
        span: Span,
        monitor: &mut dyn Monitor,
        uses: &mut Vec<MemLoc>,
    ) -> Result<Loc> {
        let base = self.resolve_var(var);
        match index {
            None => Ok(base),
            Some(ix) => {
                let iv = self.eval(ix, span, monitor, uses)?;
                let i = iv
                    .as_int()
                    .ok_or_else(|| rt_err("array index is not an integer", span))?;
                if base.elem.is_some() {
                    return Err(rt_err("cannot index a scalar location", span));
                }
                Ok(Loc {
                    elem: Some(i),
                    ..base
                })
            }
        }
    }

    fn memloc(&self, loc: Loc) -> MemLoc {
        MemLoc {
            frame: self.frames[loc.frame_idx].id,
            var: loc.var,
            elem: loc.elem,
        }
    }

    fn read_loc(&mut self, loc: Loc, span: Span) -> Result<Value> {
        let f = &self.frames[loc.frame_idx];
        let base = f
            .vars
            .get(&loc.var)
            .ok_or_else(|| rt_err("read of unbound variable", span))?;
        let value = match loc.elem {
            None => base.clone(),
            Some(i) => match base {
                Value::Array(a) => a
                    .get(i)
                    .ok_or_else(|| {
                        rt_err(
                            format!("array index {i} out of bounds [{}..{}]", a.lo, a.hi()),
                            span,
                        )
                    })?
                    .clone(),
                _ => return Err(rt_err("indexing a non-array value", span)),
            },
        };
        if let Some(p) = loc.via_param {
            let f = self.frames.last_mut().expect("frame");
            if !f.ref_written.contains(&p) && !f.ref_read.contains(&p) {
                f.ref_read.push(p);
            }
        }
        self.note_nonlocal_read(loc, &value);
        Ok(value)
    }

    /// Reads a location without recording side-effect or parameter-access
    /// bookkeeping (used to capture incoming values for reporting).
    fn peek_loc(&self, loc: Loc, span: Span) -> Result<Value> {
        let f = &self.frames[loc.frame_idx];
        let base = f
            .vars
            .get(&loc.var)
            .ok_or_else(|| rt_err("read of unbound variable", span))?;
        match loc.elem {
            None => Ok(base.clone()),
            Some(i) => match base {
                Value::Array(a) => a
                    .get(i)
                    .cloned()
                    .ok_or_else(|| rt_err("array index out of bounds", span)),
                _ => Err(rt_err("indexing a non-array value", span)),
            },
        }
    }

    fn write_loc(&mut self, loc: Loc, value: Value, span: Span) -> Result<()> {
        if let Some(p) = loc.via_param {
            let f = self.frames.last_mut().expect("frame");
            if !f.ref_written.contains(&p) {
                f.ref_written.push(p);
            }
        }
        self.note_nonlocal_write(loc);
        let f = &mut self.frames[loc.frame_idx];
        match loc.elem {
            None => {
                f.vars.insert(loc.var, value);
                Ok(())
            }
            Some(i) => {
                let base = f
                    .vars
                    .get_mut(&loc.var)
                    .ok_or_else(|| rt_err("write to unbound variable", span))?;
                match base {
                    Value::Array(a) => {
                        let (lo, hi) = (a.lo, a.hi());
                        let slot = a.get_mut(i).ok_or_else(|| {
                            rt_err(format!("array index {i} out of bounds [{lo}..{hi}]"), span)
                        })?;
                        *slot = value;
                        Ok(())
                    }
                    _ => Err(rt_err("indexing a non-array value", span)),
                }
            }
        }
    }

    /// Records direct non-local accesses on every active invocation between
    /// the accessor and the owner (the paper's global side-effect
    /// attribution). Accesses through reference-parameter bindings are
    /// parameter-mediated and not recorded.
    fn note_nonlocal_read(&mut self, loc: Loc, value: &Value) {
        let top = self.frames.len() - 1;
        if loc.via_param.is_some() || loc.frame_idx >= top {
            return;
        }
        for idx in ((loc.frame_idx + 1)..=top).rev() {
            let already_written = self.frames[idx].nl_written.contains(&loc.var);
            let already_read = self.frames[idx].nl_reads.iter().any(|(v, _)| *v == loc.var);
            if !already_written && !already_read {
                let v = value.clone();
                self.frames[idx].nl_reads.push((loc.var, v));
            }
        }
    }

    fn note_nonlocal_write(&mut self, loc: Loc) {
        let top = self.frames.len() - 1;
        if loc.via_param.is_some() || loc.frame_idx >= top {
            return;
        }
        for idx in (loc.frame_idx + 1)..=top {
            if !self.frames[idx].nl_written.contains(&loc.var) {
                self.frames[idx].nl_written.push(loc.var);
            }
        }
    }

    // ------------------------------------------------------------------
    // Events
    // ------------------------------------------------------------------

    fn fire_call_enter(&mut self, monitor: &mut dyn Monitor, args: &[(VarId, Value)]) {
        let f = self.top();
        let mut bindings: Vec<(VarId, MemLoc)> = f
            .bindings
            .iter()
            .map(|(p, loc)| {
                (
                    *p,
                    MemLoc {
                        frame: self.frames[loc.frame_idx].id,
                        var: loc.var,
                        elem: loc.elem,
                    },
                )
            })
            .collect();
        bindings.sort_by_key(|(p, _)| *p);
        let f = self.top();
        let ev = Event::CallEnter {
            call: f.call,
            frame: f.id,
            proc: f.proc,
            site_stmt: f.site_stmt,
            args,
            bindings: &bindings,
            depth: self.frames.len() - 1,
        };
        monitor.on_event(self.module, &ev);
    }

    fn fire_call_exit(&mut self, monitor: &mut dyn Monitor, via_goto: bool) {
        let f = self.frames.last().expect("frame");
        let info = self.module.proc(f.proc);
        let mut outs = Vec::new();
        for &p in &info.params {
            let mode = self.module.var(p).param_mode().expect("param");
            if mode.passes_back() {
                if let Some(b) = f.bindings.get(&p) {
                    let fb = &self.frames[b.frame_idx];
                    if let Some(base) = fb.vars.get(&b.var) {
                        let v = match b.elem {
                            None => base.clone(),
                            Some(i) => match base {
                                Value::Array(a) => a.get(i).cloned().unwrap_or(Value::Int(0)),
                                other => other.clone(),
                            },
                        };
                        outs.push((p, v));
                    }
                }
            }
        }
        if let Some(rv) = info.result_var {
            if let Some(v) = f.vars.get(&rv) {
                outs.push((rv, v.clone()));
            }
        }
        let nl_writes: Vec<(VarId, Value)> = f
            .nl_written
            .iter()
            .map(|&v| {
                let loc = {
                    // Resolve from this frame's perspective.
                    let owner = self.module.var(v).owner;
                    let mut idx = self.frames.len() - 1;
                    loop {
                        if self.frames[idx].proc == owner {
                            break Loc {
                                frame_idx: idx,
                                var: v,
                                elem: None,
                                via_param: None,
                            };
                        }
                        match self.frames[idx].static_link {
                            Some(n) => idx = n,
                            None => {
                                break Loc {
                                    frame_idx: 0,
                                    var: v,
                                    elem: None,
                                    via_param: None,
                                }
                            }
                        }
                    }
                };
                let val = self.frames[loc.frame_idx]
                    .vars
                    .get(&v)
                    .cloned()
                    .unwrap_or(Value::Int(0));
                (v, val)
            })
            .collect();
        let f = self.top();
        let ev = Event::CallExit {
            call: f.call,
            frame: f.id,
            proc: f.proc,
            outs: &outs,
            nonlocal_reads: &f.nl_reads,
            nonlocal_writes: &nl_writes,
            param_reads: &f.ref_read,
            via_goto,
        };
        monitor.on_event(self.module, &ev);
    }

    fn loop_assigned_vars(&mut self, lid: LoopId) -> Vec<VarId> {
        if let Some(v) = self.loop_vars.get(&lid) {
            return v.clone();
        }
        let info = self.cfg.loop_info(lid).clone();
        let pcfg = self.cfg.proc(info.proc);
        let mut vars = Vec::new();
        for (_, b) in pcfg.iter() {
            if !b.loops.contains(&lid) {
                continue;
            }
            for ins in &b.instrs {
                match &ins.kind {
                    InstrKind::Assign { lhs, .. } | InstrKind::Read { target: lhs } => {
                        if !vars.contains(&lhs.var) {
                            vars.push(lhs.var);
                        }
                    }
                    InstrKind::Call { args, .. } => {
                        for a in args {
                            if let CallArg::Ref(p) = a {
                                if !vars.contains(&p.var) {
                                    vars.push(p.var);
                                }
                            }
                        }
                    }
                    InstrKind::Write { .. } => {}
                }
            }
        }
        // Only variables resolvable in the loop's own proc are snapshotted.
        vars.retain(|v| self.module.var(*v).kind != VarKind::Temp);
        self.loop_vars.insert(lid, vars.clone());
        vars
    }

    fn loop_snapshot(&mut self, lid: LoopId) -> Vec<(VarId, Value)> {
        let vars = self.loop_assigned_vars(lid);
        let mut snap = Vec::new();
        for v in vars {
            let loc = self.resolve_var(v);
            if let Ok(val) = self.peek_loc(loc, Span::dummy()) {
                snap.push((v, val));
            }
        }
        snap
    }

    /// Fires loop events implied by a control transfer from the current
    /// loop context to `to_block`.
    fn transfer_loops(&mut self, to_block: BlockId, monitor: &mut dyn Monitor) {
        let proc = self.top().proc;
        let to_loops = self.cfg.proc(proc).block(to_block).loops.clone();
        let cur: Vec<LoopId> = self.top().loop_stack.iter().map(|(l, _, _)| *l).collect();
        let mut common = 0;
        while common < cur.len() && common < to_loops.len() && cur[common] == to_loops[common] {
            common += 1;
        }
        // Exit loops we left, innermost first.
        for i in (common..cur.len()).rev() {
            let (lid, instance, iters) = self.top().loop_stack[i];
            let vars = self.loop_snapshot(lid);
            let frame = self.top().id;
            monitor.on_event(
                self.module,
                &Event::LoopExit {
                    loop_id: lid,
                    frame,
                    instance,
                    iterations: iters,
                    vars: &vars,
                },
            );
            self.frames.last_mut().expect("frame").loop_stack.pop();
        }
        // Enter loops newly containing the target.
        for &lid in &to_loops[common..] {
            let instance = self.next_loop_instance;
            self.next_loop_instance += 1;
            let frame = self.top().id;
            monitor.on_event(
                self.module,
                &Event::LoopEnter {
                    loop_id: lid,
                    frame,
                    instance,
                },
            );
            self.frames
                .last_mut()
                .expect("frame")
                .loop_stack
                .push((lid, instance, 1));
        }
        // Back-edge to the innermost active loop's header = new iteration.
        if let Some(&(lid, instance, iters)) = self.top().loop_stack.last() {
            if common == to_loops.len()
                && common == cur.len()
                && self.cfg.loop_info(lid).header == to_block
            {
                let iteration = iters + 1;
                let vars = self.loop_snapshot(lid);
                let frame = self.top().id;
                monitor.on_event(
                    self.module,
                    &Event::LoopIter {
                        loop_id: lid,
                        frame,
                        instance,
                        iteration,
                        vars: &vars,
                    },
                );
                self.frames
                    .last_mut()
                    .expect("frame")
                    .loop_stack
                    .last_mut()
                    .expect("loop")
                    .2 = iteration;
            }
        }
    }

    /// Fires exits for all loops still active in the top frame (used when
    /// returning or unwinding).
    fn exit_all_loops(&mut self, monitor: &mut dyn Monitor) {
        while let Some(&(lid, instance, iters)) = self.top().loop_stack.last() {
            let vars = self.loop_snapshot(lid);
            let frame = self.top().id;
            monitor.on_event(
                self.module,
                &Event::LoopExit {
                    loop_id: lid,
                    frame,
                    instance,
                    iterations: iters,
                    vars: &vars,
                },
            );
            self.frames.last_mut().expect("frame").loop_stack.pop();
        }
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Executes the top frame's procedure. Returns `Some((owner, label))`
    /// if a non-local goto unwound past this frame.
    fn exec_proc(&mut self, monitor: &mut dyn Monitor) -> Result<Option<(ProcId, String)>> {
        let proc = self.top().proc;
        let entry = self.cfg.proc(proc).entry;
        self.exec_from(entry, monitor)
    }

    fn exec_from(
        &mut self,
        mut block: BlockId,
        monitor: &mut dyn Monitor,
    ) -> Result<Option<(ProcId, String)>> {
        let proc = self.top().proc;
        self.transfer_loops(block, monitor);
        // Cheap handle so instructions can be borrowed while `self` is
        // mutated (the CFG itself is immutable during execution).
        let cfg = Arc::clone(&self.cfg);
        'blocks: loop {
            let blk = cfg.proc(proc).block(block);
            let n_instrs = blk.instrs.len();
            for i in 0..n_instrs {
                let instr = &cfg.proc(proc).block(block).instrs[i];
                if let Some((owner, label)) = self.exec_instr(instr, block, i, monitor)? {
                    if owner == proc {
                        // A non-local goto from a callee lands here: resume
                        // at the label block, abandoning the rest of this
                        // block.
                        let target = cfg.proc(proc).labels[&label];
                        self.transfer_loops(target, monitor);
                        block = target;
                        continue 'blocks;
                    }
                    self.exit_all_loops(monitor);
                    return Ok(Some((owner, label)));
                }
            }
            let term = &cfg.proc(proc).block(block).term;
            match term {
                Terminator::Jump(b) => {
                    self.transfer_loops(*b, monitor);
                    block = *b;
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                    stmt,
                } => {
                    self.cur_ctx = (block, None, *stmt);
                    let mut uses = Vec::new();
                    let v = self.eval(cond, Span::dummy(), monitor, &mut uses)?;
                    let taken = v
                        .as_bool()
                        .ok_or_else(|| rt_err("branch condition is not boolean", Span::dummy()))?;
                    self.fire_step(monitor, block, None, *stmt, &[], &uses, Some(taken))?;
                    let b = if taken { *then_bb } else { *else_bb };
                    self.transfer_loops(b, monitor);
                    block = b;
                }
                Terminator::Return => {
                    self.exit_all_loops(monitor);
                    return Ok(None);
                }
                Terminator::NonLocalGoto { owner, label, stmt } => {
                    self.fire_step(monitor, block, None, *stmt, &[], &[], None)?;
                    self.exit_all_loops(monitor);
                    if self.top().proc == *owner {
                        // Actually local (shouldn't happen; lowering uses Jump).
                        let target = cfg.proc(*owner).labels[label];
                        self.transfer_loops(target, monitor);
                        block = target;
                        continue;
                    }
                    return Ok(Some((*owner, label.clone())));
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fire_step(
        &mut self,
        monitor: &mut dyn Monitor,
        block: BlockId,
        instr: Option<usize>,
        stmt: StmtId,
        defs: &[MemLoc],
        uses: &[MemLoc],
        branch_taken: Option<bool>,
    ) -> Result<()> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(rt_err(
                format!("step limit of {} exceeded", self.limits.max_steps),
                Span::dummy(),
            ));
        }
        let f = self.top();
        let ev = Event::Step {
            idx: self.steps,
            frame: f.id,
            proc: f.proc,
            block,
            instr,
            stmt,
            defs,
            uses,
            branch_taken,
        };
        monitor.on_event(self.module, &ev);
        Ok(())
    }

    fn exec_instr(
        &mut self,
        instr: &Instr,
        block: BlockId,
        index: usize,
        monitor: &mut dyn Monitor,
    ) -> Result<Option<(ProcId, String)>> {
        self.cur_ctx = (block, Some(index), instr.stmt);
        match &instr.kind {
            InstrKind::Assign { lhs, rhs } => {
                let mut uses = Vec::new();
                let value = self.eval(rhs, instr.span, monitor, &mut uses)?;
                let loc = self.loc_with_elem(
                    lhs.var,
                    lhs.index.as_deref(),
                    instr.span,
                    monitor,
                    &mut uses,
                )?;
                let value = self.coerce_for_store(value, loc, instr.span)?;
                let def = self.memloc(loc);
                self.write_loc(loc, value, instr.span)?;
                self.fire_step(monitor, block, Some(index), instr.stmt, &[def], &uses, None)?;
                Ok(None)
            }
            InstrKind::Call { callee, args } => {
                let (flow, _frame) =
                    self.call(*callee, args, Some(instr.stmt), instr.span, monitor)?;
                match flow {
                    CallFlow::Normal(_) => Ok(None),
                    CallFlow::Unwind(owner, label) => Ok(Some((owner, label))),
                }
            }
            InstrKind::Read { target } => {
                let mut uses = Vec::new();
                let loc = self.loc_with_elem(
                    target.var,
                    target.index.as_deref(),
                    instr.span,
                    monitor,
                    &mut uses,
                )?;
                let raw = self
                    .input
                    .pop_front()
                    .ok_or_else(|| rt_err("input exhausted", instr.span))?;
                let value = self.coerce_for_store(raw, loc, instr.span)?;
                let def = self.memloc(loc);
                self.write_loc(loc, value, instr.span)?;
                self.fire_step(monitor, block, Some(index), instr.stmt, &[def], &uses, None)?;
                Ok(None)
            }
            InstrKind::Write { args, newline } => {
                let mut uses = Vec::new();
                for a in args {
                    let v = self.eval(a, instr.span, monitor, &mut uses)?;
                    self.output.push_str(&v.to_string());
                }
                if *newline {
                    self.output.push('\n');
                }
                self.fire_step(monitor, block, Some(index), instr.stmt, &[], &uses, None)?;
                Ok(None)
            }
        }
    }

    fn coerce_for_store(&self, value: Value, loc: Loc, span: Span) -> Result<Value> {
        // Determine the static type of the destination.
        let base_ty = &self.module.var(loc.var).ty;
        let ty: &Type = match (loc.elem, base_ty) {
            (Some(_), Type::Array { elem, .. }) => elem,
            (Some(_), _) => return Err(rt_err("indexing a non-array variable", span)),
            (None, t) => t,
        };
        coerce_store(value, ty, span)
    }

    // ------------------------------------------------------------------
    // Calls
    // ------------------------------------------------------------------

    /// Performs a call: evaluates arguments, fires the call's Step event
    /// (so argument uses are ordered *before* the callee's events), runs
    /// the callee, and returns the flow plus the callee's frame instance
    /// id (needed to reference the function result location).
    fn call(
        &mut self,
        callee: ProcId,
        args: &[CallArg],
        site_stmt: Option<StmtId>,
        span: Span,
        monitor: &mut dyn Monitor,
    ) -> Result<(CallFlow, u64)> {
        if self.frames.len() >= self.limits.max_depth {
            return Err(rt_err(
                format!("call depth limit of {} exceeded", self.limits.max_depth),
                span,
            ));
        }
        let mut uses = Vec::new();
        let info = self.module.proc(callee).clone();
        let mut params = HashMap::new();
        let mut bindings = HashMap::new();
        let mut entry_args = Vec::new();
        for (&p, a) in info.params.iter().zip(args) {
            let pinfo = self.module.var(p).clone();
            match a {
                CallArg::Value(e) => {
                    let v = self.eval(e, span, monitor, &mut uses)?;
                    let v = match (&v, &pinfo.ty) {
                        (Value::Int(n), Type::Real) => Value::Real(*n as f64),
                        _ => v,
                    };
                    entry_args.push((p, v.clone()));
                    params.insert(p, v);
                }
                CallArg::Ref(place) => {
                    let loc = self.loc_with_elem(
                        place.var,
                        place.index.as_deref(),
                        span,
                        monitor,
                        &mut uses,
                    )?;
                    // Incoming value for reporting (no bookkeeping).
                    let current = self.peek_loc(loc, span)?;
                    entry_args.push((p, current));
                    bindings.insert(p, loc);
                }
            }
        }
        // The call's own Step event, in the caller's context, before the
        // callee runs: dynamic dependence of the callee's parameters hangs
        // off this event.
        let (ctx_block, ctx_instr, ctx_stmt) = self.cur_ctx;
        self.fire_step(monitor, ctx_block, ctx_instr, ctx_stmt, &[], &uses, None)?;
        // Static link: nearest frame on the current static chain whose proc
        // is the callee's lexical parent.
        let static_link = match info.parent {
            None => None,
            Some(parent) => {
                let mut idx = self.frames.len() - 1;
                loop {
                    if self.frames[idx].proc == parent {
                        break Some(idx);
                    }
                    match self.frames[idx].static_link {
                        Some(n) => idx = n,
                        None => break Some(0),
                    }
                }
            }
        };
        self.push_frame(callee, static_link, params, bindings, site_stmt);
        let callee_frame = self.top().id;
        self.fire_call_enter(monitor, &entry_args);
        let saved_ctx = self.cur_ctx;
        let flow = self.exec_proc(monitor)?;
        self.cur_ctx = saved_ctx;
        match flow {
            None => {
                // Normal return.
                let result = info
                    .result_var
                    .and_then(|rv| self.top().vars.get(&rv).cloned());
                self.fire_call_exit(monitor, false);
                self.frames.pop();
                Ok((CallFlow::Normal(result), callee_frame))
            }
            Some((owner, label)) => {
                // Unwind: this frame is finished abnormally. The landing
                // (if `owner` is the caller) happens in the caller's
                // `exec_from` loop.
                self.fire_call_exit(monitor, true);
                self.frames.pop();
                Ok((CallFlow::Unwind(owner, label), callee_frame))
            }
        }
    }

    // ------------------------------------------------------------------
    // Expression evaluation
    // ------------------------------------------------------------------

    fn eval(
        &mut self,
        e: &RExpr,
        span: Span,
        monitor: &mut dyn Monitor,
        uses: &mut Vec<MemLoc>,
    ) -> Result<Value> {
        match e {
            RExpr::Lit(v) => Ok(v.clone()),
            RExpr::Var(v) => {
                let loc = self.resolve_var(*v);
                uses.push(self.memloc(loc));
                self.read_loc(loc, span)
            }
            RExpr::Index { base, index } => {
                let loc = self.loc_with_elem(*base, Some(index), span, monitor, uses)?;
                uses.push(self.memloc(loc));
                self.read_loc(loc, span)
            }
            RExpr::Call { callee, args } => {
                let (flow, callee_frame) = self.call(*callee, args, None, span, monitor)?;
                match flow {
                    CallFlow::Normal(Some(v)) => {
                        // The result flows from the callee's result
                        // pseudo-variable into this expression.
                        if let Some(rv) = self.module.proc(*callee).result_var {
                            uses.push(MemLoc {
                                frame: callee_frame,
                                var: rv,
                                elem: None,
                            });
                        }
                        Ok(v)
                    }
                    CallFlow::Normal(None) => Err(rt_err("function returned no value", span)),
                    CallFlow::Unwind(..) => Err(rt_err(
                        "non-local goto out of a function used in an expression",
                        span,
                    )),
                }
            }
            RExpr::Intrinsic { which, arg } => {
                let v = self.eval(arg, span, monitor, uses)?;
                eval_intrinsic_op(*which, v, span)
            }
            RExpr::Unary { op, operand } => {
                let v = self.eval(operand, span, monitor, uses)?;
                eval_unary_op(*op, v, span)
            }
            RExpr::Binary { op, lhs, rhs } => {
                let a = self.eval(lhs, span, monitor, uses)?;
                let b = self.eval(rhs, span, monitor, uses)?;
                eval_binary_op(*op, a, b, span)
            }
        }
    }
}

// ----------------------------------------------------------------------
// Shared scalar semantics
//
// These free functions are the single implementation of Pascal's scalar
// operators, intrinsics, and store coercion. Both execution engines (this
// tree-walker and the bytecode VM in `gadt-vm`) call them, so runtime
// error messages and numeric behavior cannot drift between engines.
// ----------------------------------------------------------------------

/// Coerces `value` for a store into a destination of static type `ty`,
/// widening `integer` to `real` and rejecting unassignable types.
pub fn coerce_store(value: Value, ty: &Type, span: Span) -> Result<Value> {
    match (&value, ty) {
        (Value::Int(n), Type::Real) => Ok(Value::Real(*n as f64)),
        _ => {
            if ty.assignable_from(&value.type_of()) {
                Ok(value)
            } else {
                Err(rt_err(
                    format!("cannot store `{}` into `{ty}`", value.type_of()),
                    span,
                ))
            }
        }
    }
}

/// Applies a unary operator to an evaluated operand.
pub fn eval_unary_op(op: UnOp, v: Value, span: Span) -> Result<Value> {
    match (op, v) {
        (UnOp::Neg, Value::Int(n)) => n
            .checked_neg()
            .map(Value::Int)
            .ok_or_else(|| rt_err("integer overflow in negation", span)),
        (UnOp::Neg, Value::Real(x)) => Ok(Value::Real(-x)),
        (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
        (op, v) => Err(rt_err(
            format!("invalid operand `{v}` for unary `{op}`"),
            span,
        )),
    }
}

/// Applies an intrinsic function to an evaluated argument.
pub fn eval_intrinsic_op(which: Intrinsic, v: Value, span: Span) -> Result<Value> {
    use Intrinsic::*;
    match (which, v) {
        (Abs, Value::Int(n)) => n
            .checked_abs()
            .map(Value::Int)
            .ok_or_else(|| rt_err("integer overflow in abs", span)),
        (Abs, Value::Real(x)) => Ok(Value::Real(x.abs())),
        (Sqr, Value::Int(n)) => n
            .checked_mul(n)
            .map(Value::Int)
            .ok_or_else(|| rt_err("integer overflow in sqr", span)),
        (Sqr, Value::Real(x)) => Ok(Value::Real(x * x)),
        (Odd, Value::Int(n)) => Ok(Value::Bool(n % 2 != 0)),
        (Ord, Value::Char(c)) => Ok(Value::Int(c as i64)),
        (Chr, Value::Int(n)) => u32::try_from(n)
            .ok()
            .and_then(char::from_u32)
            .map(Value::Char)
            .ok_or_else(|| rt_err(format!("chr({n}) out of range"), span)),
        (Trunc, Value::Real(x)) => Ok(Value::Int(x.trunc() as i64)),
        (Round, Value::Real(x)) => Ok(Value::Int(x.round() as i64)),
        (which, v) => Err(rt_err(
            format!("invalid argument `{v}` for {}", which.name()),
            span,
        )),
    }
}

/// Applies a binary operator to two evaluated operands.
pub fn eval_binary_op(op: BinOp, a: Value, b: Value, span: Span) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul => match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => {
                let r = match op {
                    Add => x.checked_add(*y),
                    Sub => x.checked_sub(*y),
                    Mul => x.checked_mul(*y),
                    _ => unreachable!(),
                };
                r.map(Value::Int)
                    .ok_or_else(|| rt_err(format!("integer overflow in `{op}`"), span))
            }
            _ => {
                let (x, y) = two_reals(&a, &b, op, span)?;
                Ok(Value::Real(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    _ => unreachable!(),
                }))
            }
        },
        FDiv => {
            let (x, y) = two_reals(&a, &b, op, span)?;
            if y == 0.0 {
                return Err(rt_err("division by zero", span));
            }
            Ok(Value::Real(x / y))
        }
        Div | Mod => match (&a, &b) {
            (Value::Int(x), Value::Int(y)) => {
                if *y == 0 {
                    return Err(rt_err("division by zero", span));
                }
                let r = match op {
                    Div => x.checked_div(*y),
                    Mod => x.checked_rem(*y),
                    _ => unreachable!(),
                };
                r.map(Value::Int)
                    .ok_or_else(|| rt_err(format!("integer overflow in `{op}`"), span))
            }
            _ => Err(rt_err(format!("`{op}` requires integers"), span)),
        },
        And | Or => match (&a, &b) {
            (Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(match op {
                And => *x && *y,
                Or => *x || *y,
                _ => unreachable!(),
            })),
            _ => Err(rt_err(format!("`{op}` requires booleans"), span)),
        },
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = compare(&a, &b, span)?;
            Ok(Value::Bool(match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            }))
        }
    }
}

fn two_reals(a: &Value, b: &Value, op: BinOp, span: Span) -> Result<(f64, f64)> {
    match (a.as_real(), b.as_real()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(rt_err(
            format!("`{op}` requires numeric operands, found `{a}` and `{b}`"),
            span,
        )),
    }
}

fn compare(a: &Value, b: &Value, span: Span) -> Result<std::cmp::Ordering> {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Ok(x.cmp(y)),
        (Value::Char(x), Value::Char(y)) => Ok(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        _ => match (a.as_real(), b.as_real()) {
            (Some(x), Some(y)) => Ok(x.partial_cmp(&y).unwrap_or(Ordering::Equal)),
            _ => Err(rt_err(format!("cannot compare `{a}` with `{b}`"), span)),
        },
    }
}

enum CallFlow {
    /// The call returned normally (with the function result, if any).
    Normal(Option<Value>),
    /// A non-local goto is unwinding toward `(owner, label)`.
    Unwind(ProcId, String),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sema::compile;

    fn run_src(src: &str) -> Outcome {
        let m = compile(src).expect("compile");
        let mut i = Interpreter::new(&m);
        i.run()
            .unwrap_or_else(|e| panic!("run failed: {e}\nsource: {src}"))
    }

    fn run_with_input(src: &str, input: Vec<i64>) -> Outcome {
        let m = compile(src).expect("compile");
        let mut i = Interpreter::new(&m);
        i.set_input(input.into_iter().map(Value::Int));
        i.run().expect("run")
    }

    #[test]
    fn arithmetic_and_output() {
        let o = run_src(
            "program t; var x: integer;
             begin x := 2 + 3 * 4; writeln(x) end.",
        );
        assert_eq!(o.output_text(), "14\n");
    }

    #[test]
    fn real_arithmetic() {
        let o = run_src(
            "program t; var x: real;
             begin x := 7 / 2; writeln(x) end.",
        );
        assert_eq!(o.output_text(), "3.5\n");
    }

    #[test]
    fn div_mod_semantics() {
        let o = run_src("program t; begin writeln(7 div 2, ' ', 7 mod 2, ' ', -7 div 2) end.");
        assert_eq!(o.output_text(), "3 1 -3\n");
    }

    #[test]
    fn division_by_zero_is_a_runtime_error() {
        let m = compile("program t; var x: integer; begin x := 1 div (x - x) end.").unwrap();
        let e = Interpreter::new(&m).run().unwrap_err();
        assert!(e.message.contains("division by zero"));
    }

    #[test]
    fn while_loop_runs() {
        let o = run_src(
            "program t; var i, s: integer;
             begin i := 1; s := 0;
               while i <= 5 do begin s := s + i; i := i + 1 end;
               writeln(s)
             end.",
        );
        assert_eq!(o.output_text(), "15\n");
    }

    #[test]
    fn for_loop_to_and_downto() {
        let o = run_src(
            "program t; var i, s: integer;
             begin
               s := 0; for i := 1 to 4 do s := s + i; writeln(s);
               s := 0; for i := 4 downto 2 do s := s + i; writeln(s)
             end.",
        );
        assert_eq!(o.output_text(), "10\n9\n");
    }

    #[test]
    fn for_loop_zero_iterations() {
        let o = run_src(
            "program t; var i, s: integer;
             begin s := 0; for i := 3 to 1 do s := s + 1; writeln(s) end.",
        );
        assert_eq!(o.output_text(), "0\n");
    }

    #[test]
    fn for_loop_limit_evaluated_once() {
        let o = run_src(
            "program t; var i, n, s: integer;
             begin
               n := 3; s := 0;
               for i := 1 to n do begin n := 100; s := s + 1 end;
               writeln(s)
             end.",
        );
        assert_eq!(o.output_text(), "3\n");
    }

    #[test]
    fn repeat_executes_at_least_once() {
        let o = run_src(
            "program t; var x: integer;
             begin x := 10; repeat x := x + 1 until true; writeln(x) end.",
        );
        assert_eq!(o.output_text(), "11\n");
    }

    #[test]
    fn read_and_write() {
        let o = run_with_input(
            "program t; var x, y: integer; begin read(x, y); writeln(x + y) end.",
            vec![3, 4],
        );
        assert_eq!(o.output_text(), "7\n");
    }

    #[test]
    fn input_exhausted_is_an_error() {
        let m = compile("program t; var x: integer; begin read(x) end.").unwrap();
        let e = Interpreter::new(&m).run().unwrap_err();
        assert!(e.message.contains("input exhausted"));
    }

    #[test]
    fn var_params_write_through() {
        let o = run_src(
            "program t; var x: integer;
             procedure inc2(var a: integer); begin a := a + 2 end;
             begin x := 5; inc2(x); writeln(x) end.",
        );
        assert_eq!(o.output_text(), "7\n");
    }

    #[test]
    fn var_param_array_element() {
        let o = run_src(
            "program t; var a: array[1..3] of integer;
             procedure setit(var e: integer); begin e := 42 end;
             begin setit(a[2]); writeln(a[1], ' ', a[2]) end.",
        );
        assert_eq!(o.output_text(), "0 42\n");
    }

    #[test]
    fn value_params_do_not_write_through() {
        let o = run_src(
            "program t; var x: integer;
             procedure p(a: integer); begin a := 99 end;
             begin x := 5; p(x); writeln(x) end.",
        );
        assert_eq!(o.output_text(), "5\n");
    }

    #[test]
    fn function_result_and_recursion() {
        let o = run_src(
            "program t;
             function fact(n: integer): integer;
             begin if n <= 1 then fact := 1 else fact := n * fact(n - 1) end;
             begin writeln(fact(6)) end.",
        );
        assert_eq!(o.output_text(), "720\n");
    }

    #[test]
    fn nested_procedure_uplevel_access() {
        let o = run_src(
            "program t; var g: integer;
             procedure outer;
             var x: integer;
               procedure inner; begin x := x + 10; g := g + 1 end;
             begin x := 1; inner; inner; writeln(x) end;
             begin g := 0; outer; writeln(g) end.",
        );
        assert_eq!(o.output_text(), "21\n2\n");
    }

    #[test]
    fn global_side_effects_visible() {
        let o = run_src(crate::testprogs::SECTION6_GLOBALS);
        // x=10; p(w): w := x+1 = 11; z := w-x = 1.
        assert_eq!(o.output_text(), "111\n");
    }

    #[test]
    fn local_goto_skips_code() {
        let o = run_src(
            "program t; label 9; var x: integer;
             begin x := 1; goto 9; x := 2; 9: writeln(x) end.",
        );
        assert_eq!(o.output_text(), "1\n");
    }

    #[test]
    fn goto_out_of_loop() {
        let o = run_src(crate::testprogs::SECTION6_LOOP_GOTO);
        // s accumulates 1+2+3 = 6, then 1+2+3+4=10 > 6 → goto 9 with s=10.
        assert_eq!(o.output_text(), "10\n");
    }

    #[test]
    fn nonlocal_goto_unwinds_frames() {
        let o = run_src(crate::testprogs::SECTION6_GOTO);
        // q: trace+1 =1, goto 9 skips +10 and skips p's +100, lands 9: +1000.
        assert_eq!(o.output_text(), "1001\n");
    }

    #[test]
    fn paper_sqrtest_produces_false() {
        let o = run_src(crate::testprogs::SQRTEST);
        assert_eq!(o.global("isok"), Some(&Value::Bool(false)));
    }

    #[test]
    fn paper_sqrtest_fixed_produces_true() {
        let o = run_src(crate::testprogs::SQRTEST_FIXED);
        assert_eq!(o.global("isok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn figure2_both_branches() {
        let o = run_with_input(crate::testprogs::FIGURE2, vec![1, 5]);
        assert_eq!(o.global("sum"), Some(&Value::Int(6)));
        assert_eq!(o.global("mul"), Some(&Value::Int(0)));
        let o = run_with_input(crate::testprogs::FIGURE2, vec![3, 5, 7]);
        assert_eq!(o.global("sum"), Some(&Value::Int(0)));
        assert_eq!(o.global("mul"), Some(&Value::Int(15)));
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let m = compile("program t; begin while true do begin end end.").unwrap();
        let mut i = Interpreter::new(&m);
        i.set_limits(Limits {
            max_steps: 1000,
            max_depth: 100,
        });
        let e = i.run().unwrap_err();
        assert!(e.message.contains("step limit"));
    }

    #[test]
    fn depth_limit_catches_infinite_recursion() {
        let m = compile(
            "program t;
             procedure p; begin p end;
             begin p end.",
        )
        .unwrap();
        let mut i = Interpreter::new(&m);
        i.set_limits(Limits {
            max_steps: 1_000_000,
            max_depth: 50,
        });
        let e = i.run().unwrap_err();
        assert!(e.message.contains("depth limit"));
    }

    #[test]
    fn array_out_of_bounds_is_a_runtime_error() {
        let m = compile(
            "program t; var a: array[1..3] of integer; i: integer;
             begin i := 4; a[i] := 1 end.",
        )
        .unwrap();
        let e = Interpreter::new(&m).run().unwrap_err();
        assert!(e.message.contains("out of bounds"));
    }

    #[test]
    fn integer_overflow_is_a_runtime_error() {
        let m = compile(
            "program t; var x: integer;
             begin x := 1; while true do x := x * 2 end.",
        )
        .unwrap();
        let e = Interpreter::new(&m).run().unwrap_err();
        assert!(e.message.contains("overflow"));
    }

    #[test]
    fn intrinsics_evaluate() {
        let o = run_src(
            "program t;
             begin writeln(abs(-5), ' ', sqr(3), ' ', odd(3), ' ', chr(65), ' ', ord('A'),
                           ' ', trunc(2.9), ' ', round(2.5)) end.",
        );
        assert_eq!(o.output_text(), "5 9 true A 65 2 3\n");
    }

    #[test]
    fn whole_array_value_param_is_copied() {
        let o = run_src(
            "program t; type arr = array[1..2] of integer; var a: arr;
             procedure p(b: arr); begin b[1] := 99 end;
             begin a[1] := 7; p(a); writeln(a[1]) end.",
        );
        assert_eq!(o.output_text(), "7\n");
    }

    #[test]
    fn events_are_delivered_in_order() {
        #[derive(Default)]
        struct Collector(Vec<String>);
        impl Monitor for Collector {
            fn on_event(&mut self, m: &Module, ev: &Event<'_>) {
                match ev {
                    Event::CallEnter { proc, .. } => {
                        self.0.push(format!("enter {}", m.proc(*proc).name))
                    }
                    Event::CallExit { proc, .. } => {
                        self.0.push(format!("exit {}", m.proc(*proc).name))
                    }
                    Event::LoopEnter { .. } => self.0.push("loop-enter".into()),
                    Event::LoopIter { iteration, .. } => self.0.push(format!("iter {iteration}")),
                    Event::LoopExit { iterations, .. } => {
                        self.0.push(format!("loop-exit {iterations}"))
                    }
                    Event::Step { .. } => {}
                }
            }
        }
        let m = compile(
            "program t; var i, s: integer;
             procedure p; begin s := s + 1 end;
             begin for i := 1 to 2 do p end.",
        )
        .unwrap();
        let mut mon = Collector::default();
        Interpreter::new(&m).run_with(&mut mon).unwrap();
        assert_eq!(
            mon.0,
            vec![
                "enter <main>",
                "loop-enter",
                "enter p",
                "exit p",
                "iter 2",
                "enter p",
                "exit p",
                "iter 3",
                "loop-exit 3",
                "exit <main>",
            ]
        );
    }

    #[test]
    fn call_exit_reports_nonlocal_writes() {
        struct Check(Vec<(String, Vec<String>)>);
        impl Monitor for Check {
            fn on_event(&mut self, m: &Module, ev: &Event<'_>) {
                if let Event::CallExit {
                    proc,
                    nonlocal_writes,
                    ..
                } = ev
                {
                    self.0.push((
                        m.proc(*proc).name.clone(),
                        nonlocal_writes
                            .iter()
                            .map(|(v, _)| m.var(*v).name.clone())
                            .collect(),
                    ));
                }
            }
        }
        let m = compile(crate::testprogs::SECTION6_GLOBALS).unwrap();
        let mut mon = Check(Vec::new());
        Interpreter::new(&m).run_with(&mut mon).unwrap();
        let p_exit = mon.0.iter().find(|(n, _)| n == "p").unwrap();
        assert_eq!(p_exit.1, vec!["z".to_string()]);
    }

    #[test]
    fn step_events_report_defs_and_uses() {
        struct Steps(Vec<(Vec<VarId>, Vec<VarId>)>);
        impl Monitor for Steps {
            fn on_event(&mut self, _m: &Module, ev: &Event<'_>) {
                if let Event::Step { defs, uses, .. } = ev {
                    self.0.push((
                        defs.iter().map(|d| d.var).collect(),
                        uses.iter().map(|u| u.var).collect(),
                    ));
                }
            }
        }
        let m = compile("program t; var x, y: integer; begin x := 1; y := x + x end.").unwrap();
        let mut mon = Steps(Vec::new());
        Interpreter::new(&m).run_with(&mut mon).unwrap();
        let x = m.var_in_scope(MAIN_PROC, "x").unwrap();
        let y = m.var_in_scope(MAIN_PROC, "y").unwrap();
        assert_eq!(mon.0.len(), 2);
        assert_eq!(mon.0[0].0, vec![x]);
        assert!(mon.0[0].1.is_empty());
        assert_eq!(mon.0[1].0, vec![y]);
        assert_eq!(mon.0[1].1, vec![x, x]);
    }

    #[test]
    fn outcome_exposes_globals() {
        let o = run_src("program t; var x: integer; b: boolean; begin x := 3; b := true end.");
        assert_eq!(o.global("x"), Some(&Value::Int(3)));
        assert_eq!(o.global("B"), Some(&Value::Bool(true)));
        assert_eq!(o.global("missing"), None);
    }
}

#[cfg(test)]
mod run_proc_tests {
    use super::*;
    use crate::sema::compile;

    #[test]
    fn run_proc_with_value_and_var_params() {
        let m = compile(crate::testprogs::SQRTEST).unwrap();
        let arrsum = m.proc_by_name("arrsum").unwrap();
        let mut i = Interpreter::new(&m);
        let run = i
            .run_proc(
                arrsum,
                vec![vec![1, 2].into(), Value::Int(2), Value::Int(0)],
            )
            .unwrap();
        assert_eq!(run.outs.len(), 1);
        assert_eq!(run.outs[0].1, Value::Int(3));
    }

    #[test]
    fn run_proc_function_result() {
        let m = compile(crate::testprogs::SQRTEST).unwrap();
        let dec = m.proc_by_name("decrement").unwrap();
        let mut i = Interpreter::new(&m);
        let run = i.run_proc(dec, vec![Value::Int(3)]).unwrap();
        assert_eq!(run.result, Some(Value::Int(4))); // the planted bug
    }

    #[test]
    fn run_proc_rejects_nested_procs() {
        let m = compile(crate::testprogs::PQR).unwrap();
        let q = m.proc_by_name("q").unwrap();
        let mut i = Interpreter::new(&m);
        let e = i
            .run_proc(q, vec![Value::Int(1), Value::Int(0)])
            .unwrap_err();
        assert!(e.message.contains("top level"));
    }

    #[test]
    fn run_proc_rejects_bad_arity_and_types() {
        let m = compile(crate::testprogs::SQRTEST).unwrap();
        let arrsum = m.proc_by_name("arrsum").unwrap();
        let mut i = Interpreter::new(&m);
        assert!(i.run_proc(arrsum, vec![Value::Int(1)]).is_err());
        let e = i
            .run_proc(arrsum, vec![Value::Int(1), Value::Int(2), Value::Int(0)])
            .unwrap_err();
        assert!(e.message.contains("type"), "{}", e.message);
    }
}
