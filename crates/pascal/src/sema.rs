//! Name resolution and type checking.
//!
//! Produces a [`Module`]: the program plus symbol tables and side tables
//! keyed by statement/expression ids. Downstream passes (CFG lowering,
//! side-effect analysis, slicing, transformation) all consume the `Module`
//! rather than re-resolving names.
//!
//! Scoping follows Pascal: procedures nest arbitrarily and may reference
//! variables of enclosing scopes (the paper calls any reference to a
//! variable "not locally declared in the current procedure" a *global
//! side-effect* when written — see §6). Non-local `goto`s into enclosing
//! blocks are legal here; the transformation phase removes them.

use crate::ast::*;
use crate::error::{Diagnostic, Result, Stage};
use crate::span::Span;
use crate::types::Type;
use crate::value::Value;
use std::collections::HashMap;

/// Unique id of a variable (global, local, parameter, result, or temp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Unique id of a procedure/function. Id 0 is the main program body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// The main program body, modeled as procedure 0.
pub const MAIN_PROC: ProcId = ProcId(0);

impl std::fmt::Display for VarId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// What kind of storage a variable is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Declared at program level.
    Global,
    /// Declared in a procedure's `var` section.
    Local,
    /// A formal parameter.
    Param {
        /// Passing mode.
        mode: ParamMode,
        /// Zero-based position in the flattened parameter list.
        position: usize,
    },
    /// The pseudo-variable holding a function's result.
    Result,
    /// Compiler-synthesized temporary (e.g. `for`-loop limits).
    Temp,
}

/// Information about one variable.
#[derive(Debug, Clone)]
pub struct VarInfo {
    /// The variable's id.
    pub id: VarId,
    /// Original spelling.
    pub name: String,
    /// Resolved type.
    pub ty: Type,
    /// Storage kind.
    pub kind: VarKind,
    /// The procedure owning the variable ([`MAIN_PROC`] for globals).
    pub owner: ProcId,
    /// Nesting level of the owner (0 = program).
    pub level: u32,
    /// Declaration site.
    pub span: Span,
}

impl VarInfo {
    /// Whether this is a formal parameter.
    pub fn is_param(&self) -> bool {
        matches!(self.kind, VarKind::Param { .. })
    }

    /// The parameter mode, if a parameter.
    pub fn param_mode(&self) -> Option<ParamMode> {
        match self.kind {
            VarKind::Param { mode, .. } => Some(mode),
            _ => None,
        }
    }
}

/// Information about one procedure or function.
#[derive(Debug, Clone)]
pub struct ProcInfo {
    /// The procedure's id.
    pub id: ProcId,
    /// Original spelling (`"<main>"` for the program body).
    pub name: String,
    /// Flattened formal parameters, in declaration order.
    pub params: Vec<VarId>,
    /// Return type for functions.
    pub return_type: Option<Type>,
    /// The result pseudo-variable for functions.
    pub result_var: Option<VarId>,
    /// Enclosing procedure (`None` only for the main body).
    pub parent: Option<ProcId>,
    /// Nesting level (0 = main body, 1 = top-level procedures, …).
    pub level: u32,
    /// Declaration site.
    pub span: Span,
    /// Index path into nested `block.procs` vectors locating the
    /// declaration (empty for the main body).
    pub decl_path: Vec<usize>,
}

impl ProcInfo {
    /// Whether this is a function.
    pub fn is_function(&self) -> bool {
        self.return_type.is_some()
    }
}

/// Built-in functions available without declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `abs(x)` — absolute value (integer or real).
    Abs,
    /// `sqr(x)` — square (integer or real).
    Sqr,
    /// `odd(n)` — whether an integer is odd.
    Odd,
    /// `ord(c)` — character code.
    Ord,
    /// `chr(n)` — character from code.
    Chr,
    /// `trunc(x)` — real to integer, toward zero.
    Trunc,
    /// `round(x)` — real to nearest integer.
    Round,
}

impl Intrinsic {
    fn lookup(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "abs" => Intrinsic::Abs,
            "sqr" => Intrinsic::Sqr,
            "odd" => Intrinsic::Odd,
            "ord" => Intrinsic::Ord,
            "chr" => Intrinsic::Chr,
            "trunc" => Intrinsic::Trunc,
            "round" => Intrinsic::Round,
            _ => return None,
        })
    }

    /// The intrinsic's name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Abs => "abs",
            Intrinsic::Sqr => "sqr",
            Intrinsic::Odd => "odd",
            Intrinsic::Ord => "ord",
            Intrinsic::Chr => "chr",
            Intrinsic::Trunc => "trunc",
            Intrinsic::Round => "round",
        }
    }
}

/// What a name occurrence resolved to.
#[derive(Debug, Clone, PartialEq)]
pub enum NameRes {
    /// A variable (or parameter/result/temp).
    Var(VarId),
    /// A declared constant, with its value.
    Const(Value),
    /// A user function/procedure.
    Proc(ProcId),
    /// A built-in function.
    Intrinsic(Intrinsic),
}

/// A resolved, type-checked program.
#[derive(Debug, Clone)]
pub struct Module {
    /// The (possibly transformed) AST.
    pub program: Program,
    /// All variables, indexed by [`VarId`].
    pub vars: Vec<VarInfo>,
    /// All procedures, indexed by [`ProcId`]; entry 0 is the main body.
    pub procs: Vec<ProcInfo>,
    /// Resolution of every name-like expression and lvalue, keyed by
    /// [`ExprId`].
    pub res: HashMap<ExprId, NameRes>,
    /// Type of every expression; for lvalues, the type of the target
    /// location.
    pub expr_ty: HashMap<ExprId, Type>,
    /// Callee of every call *statement*.
    pub call_res: HashMap<StmtId, ProcId>,
    /// Synthesized `for`-loop limit temporaries, keyed by the `for`
    /// statement's id.
    pub for_temps: HashMap<StmtId, VarId>,
    /// Synthesized `case`-scrutinee temporaries (the scrutinee is
    /// evaluated once), keyed by the `case` statement's id.
    pub case_temps: HashMap<StmtId, VarId>,
    /// Owning unit (procedure body) of every statement.
    pub proc_of_stmt: HashMap<StmtId, ProcId>,
    /// Resolution of every `goto`: the procedure lexically owning the label
    /// and the normalized label name. A goto whose owner differs from the
    /// goto's own procedure is a *global goto* (§6).
    pub goto_res: HashMap<StmtId, (ProcId, String)>,
    /// Labels declared per procedure (normalized names).
    pub labels_of_proc: HashMap<ProcId, Vec<String>>,
}

impl Module {
    /// Variable info by id.
    ///
    /// # Panics
    /// Panics if `id` is not a variable of this module.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.0 as usize]
    }

    /// Procedure info by id.
    ///
    /// # Panics
    /// Panics if `id` is not a procedure of this module.
    pub fn proc(&self, id: ProcId) -> &ProcInfo {
        &self.procs[id.0 as usize]
    }

    /// The AST declaration of a procedure (`None` for the main body).
    pub fn proc_decl(&self, id: ProcId) -> Option<&ProcDecl> {
        let info = self.proc(id);
        if info.decl_path.is_empty() && id == MAIN_PROC {
            return None;
        }
        let mut block = &self.program.block;
        let mut decl = None;
        for &i in &info.decl_path {
            decl = Some(&block.procs[i]);
            block = &block.procs[i].block;
        }
        decl
    }

    /// The body statements of a procedure (the main body for
    /// [`MAIN_PROC`]).
    pub fn proc_body(&self, id: ProcId) -> &[Stmt] {
        match self.proc_decl(id) {
            Some(d) => &d.block.body,
            None => &self.program.block.body,
        }
    }

    /// The block of a procedure (the program block for [`MAIN_PROC`]).
    pub fn proc_block(&self, id: ProcId) -> &Block {
        match self.proc_decl(id) {
            Some(d) => &d.block,
            None => &self.program.block,
        }
    }

    /// Looks up a procedure by (case-insensitive) name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        let key = name.to_ascii_lowercase();
        self.procs
            .iter()
            .find(|p| p.name.to_ascii_lowercase() == key)
            .map(|p| p.id)
    }

    /// Looks up a variable by (case-insensitive) name within a procedure,
    /// falling back through enclosing scopes to globals.
    pub fn var_in_scope(&self, proc: ProcId, name: &str) -> Option<VarId> {
        let key = name.to_ascii_lowercase();
        let mut cur = Some(proc);
        while let Some(p) = cur {
            if let Some(v) = self
                .vars
                .iter()
                .find(|v| v.owner == p && v.name.to_ascii_lowercase() == key)
            {
                return Some(v.id);
            }
            cur = self.proc(p).parent;
        }
        None
    }

    /// All variables owned by a procedure.
    pub fn vars_of(&self, proc: ProcId) -> impl Iterator<Item = &VarInfo> {
        self.vars.iter().filter(move |v| v.owner == proc)
    }

    /// The variable a resolved name refers to, if any.
    pub fn res_var(&self, id: ExprId) -> Option<VarId> {
        match self.res.get(&id)? {
            NameRes::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether `var` is non-local to `proc` (declared in an enclosing
    /// scope, including program level). Such variables are the subject of
    /// the paper's side-effect analysis.
    pub fn is_nonlocal(&self, proc: ProcId, var: VarId) -> bool {
        self.var(var).owner != proc
    }
}

/// Runs name resolution and type checking over a parsed program.
///
/// # Errors
///
/// Returns the first semantic error (undeclared name, type mismatch, bad
/// argument, duplicate declaration, unresolved label, …).
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{parser::parse_program, sema::analyze};
/// let prog = parse_program("program t; var x: integer; begin x := 1 end.")?;
/// let module = analyze(prog)?;
/// assert_eq!(module.procs.len(), 1); // just the main body
/// # Ok(())
/// # }
/// ```
pub fn analyze(program: Program) -> Result<Module> {
    let mut cx = Checker::new();
    cx.run(&program)?;
    Ok(Module {
        program,
        vars: cx.vars,
        procs: cx.procs,
        res: cx.res,
        expr_ty: cx.expr_ty,
        call_res: cx.call_res,
        for_temps: cx.for_temps,
        case_temps: cx.case_temps,
        proc_of_stmt: cx.proc_of_stmt,
        goto_res: cx.goto_res,
        labels_of_proc: cx.labels_of_proc,
    })
}

/// Convenience: parse then analyze.
///
/// # Errors
/// Propagates lexical, syntax, and semantic errors.
pub fn compile(source: &str) -> Result<Module> {
    analyze(crate::parser::parse_program(source)?)
}

#[derive(Debug, Clone)]
enum ScopeEntry {
    Var(VarId),
    Const(Value),
    Proc(ProcId),
    TypeName(Type),
}

#[derive(Default)]
struct Scope {
    entries: HashMap<String, ScopeEntry>,
}

struct Checker {
    vars: Vec<VarInfo>,
    procs: Vec<ProcInfo>,
    res: HashMap<ExprId, NameRes>,
    expr_ty: HashMap<ExprId, Type>,
    call_res: HashMap<StmtId, ProcId>,
    for_temps: HashMap<StmtId, VarId>,
    case_temps: HashMap<StmtId, VarId>,
    proc_of_stmt: HashMap<StmtId, ProcId>,
    goto_res: HashMap<StmtId, (ProcId, String)>,
    labels_of_proc: HashMap<ProcId, Vec<String>>,
    scopes: Vec<Scope>,
    /// Procedure whose body is currently being checked.
    current_proc: ProcId,
}

fn err(msg: impl Into<String>, span: Span) -> Diagnostic {
    Diagnostic::new(Stage::Sema, msg, span)
}

/// `Some(c)` iff `s` is exactly one character long — the string/char
/// disambiguation rule for Pascal literals.
pub(crate) fn single_char(s: &str) -> Option<char> {
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) => Some(c),
        _ => None,
    }
}

impl Checker {
    fn new() -> Self {
        Checker {
            vars: Vec::new(),
            procs: Vec::new(),
            res: HashMap::new(),
            expr_ty: HashMap::new(),
            call_res: HashMap::new(),
            for_temps: HashMap::new(),
            case_temps: HashMap::new(),
            proc_of_stmt: HashMap::new(),
            goto_res: HashMap::new(),
            labels_of_proc: HashMap::new(),
            scopes: Vec::new(),
            current_proc: MAIN_PROC,
        }
    }

    fn run(&mut self, program: &Program) -> Result<()> {
        // Main body is procedure 0.
        self.procs.push(ProcInfo {
            id: MAIN_PROC,
            name: "<main>".to_string(),
            params: Vec::new(),
            return_type: None,
            result_var: None,
            parent: None,
            level: 0,
            span: program.span,
            decl_path: Vec::new(),
        });
        self.scopes.push(Scope::default());
        self.check_block(&program.block, MAIN_PROC, &[])?;
        self.scopes.pop();
        Ok(())
    }

    fn define(&mut self, name: &Ident, entry: ScopeEntry) -> Result<()> {
        let scope = self.scopes.last_mut().expect("scope stack nonempty");
        if scope.entries.insert(name.key(), entry).is_some() {
            return Err(err(format!("duplicate declaration of `{name}`"), name.span));
        }
        Ok(())
    }

    fn lookup(&self, key: &str) -> Option<&ScopeEntry> {
        self.scopes.iter().rev().find_map(|s| s.entries.get(key))
    }

    fn new_var(
        &mut self,
        name: &Ident,
        ty: Type,
        kind: VarKind,
        owner: ProcId,
        level: u32,
    ) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            id,
            name: name.name.clone(),
            ty,
            kind,
            owner,
            level,
            span: name.span,
        });
        id
    }

    /// Declares everything in `block` (for procedure `owner`) and checks its
    /// body.
    fn check_block(&mut self, block: &Block, owner: ProcId, decl_path: &[usize]) -> Result<()> {
        let level = self.procs[owner.0 as usize].level;

        // Labels.
        let mut labels = Vec::new();
        for l in &block.labels {
            let key = l.key();
            if labels.contains(&key) {
                return Err(err(format!("duplicate label `{l}`"), l.span));
            }
            labels.push(key);
        }
        self.labels_of_proc.insert(owner, labels);

        // Constants.
        for c in &block.consts {
            let value = match &c.value {
                ConstValue::Int(n) => Value::Int(*n),
                ConstValue::Real(x) => Value::Real(*x),
                ConstValue::Bool(b) => Value::Bool(*b),
                ConstValue::Str(s) => match single_char(s) {
                    Some(c) => Value::Char(c),
                    None => Value::Str(s.clone()),
                },
            };
            self.define(&c.name, ScopeEntry::Const(value))?;
        }

        // Types.
        for t in &block.types {
            let ty = self.resolve_type(&t.ty)?;
            self.define(&t.name, ScopeEntry::TypeName(ty))?;
        }

        // Variables.
        for group in &block.vars {
            let ty = self.resolve_type(&group.ty)?;
            for name in &group.names {
                let kind = if owner == MAIN_PROC {
                    VarKind::Global
                } else {
                    VarKind::Local
                };
                let id = self.new_var(name, ty.clone(), kind, owner, level);
                self.define(name, ScopeEntry::Var(id))?;
            }
        }

        // Procedure headers first (so siblings can call each other and
        // recursion works), then their bodies.
        let mut child_ids = Vec::new();
        for (i, p) in block.procs.iter().enumerate() {
            let pid = ProcId(self.procs.len() as u32);
            let return_type = match &p.return_type {
                Some(t) => Some(self.resolve_type(t)?),
                None => None,
            };
            let mut path = decl_path.to_vec();
            path.push(i);
            self.procs.push(ProcInfo {
                id: pid,
                name: p.name.name.clone(),
                params: Vec::new(),
                return_type,
                result_var: None,
                parent: Some(owner),
                level: level + 1,
                span: p.span,
                decl_path: path,
            });
            self.define(&p.name, ScopeEntry::Proc(pid))?;
            child_ids.push(pid);
        }
        for (p, pid) in block.procs.iter().zip(child_ids.iter().copied()) {
            self.check_proc(p, pid)?;
        }

        // Body.
        let saved = self.current_proc;
        self.current_proc = owner;
        for s in &block.body {
            self.check_stmt(s)?;
        }
        self.current_proc = saved;

        // Every goto in this body must have resolved (checked in
        // check_stmt); verify all labels referenced by local labeled
        // statements were declared.
        let declared = &self.labels_of_proc[&owner];
        let mut label_err = None;
        for s in &block.body {
            s.walk(&mut |s| {
                if let StmtKind::Labeled { label, .. } = &s.kind {
                    if !declared.contains(&label.key()) && label_err.is_none() {
                        label_err = Some(err(
                            format!("label `{label}` not declared in this block"),
                            label.span,
                        ));
                    }
                }
            });
        }
        if let Some(e) = label_err {
            return Err(e);
        }
        Ok(())
    }

    fn check_proc(&mut self, decl: &ProcDecl, pid: ProcId) -> Result<()> {
        let level = self.procs[pid.0 as usize].level;
        self.scopes.push(Scope::default());

        // Parameters.
        let mut param_ids = Vec::new();
        let mut position = 0;
        for group in &decl.params {
            let ty = self.resolve_type(&group.ty)?;
            for name in &group.names {
                let id = self.new_var(
                    name,
                    ty.clone(),
                    VarKind::Param {
                        mode: group.mode,
                        position,
                    },
                    pid,
                    level,
                );
                self.define(name, ScopeEntry::Var(id))?;
                param_ids.push(id);
                position += 1;
            }
        }
        self.procs[pid.0 as usize].params = param_ids;

        // Function result pseudo-variable.
        if let Some(rt) = self.procs[pid.0 as usize].return_type.clone() {
            let result_name = Ident::new(decl.name.name.clone(), decl.name.span);
            let rid = self.new_var(&result_name, rt, VarKind::Result, pid, level);
            self.procs[pid.0 as usize].result_var = Some(rid);
            // NOTE: the function's own name stays visible as a Proc from the
            // enclosing scope; assignment `f := e` special-cases the result
            // variable in `resolve_lvalue`.
        }

        let path = self.procs[pid.0 as usize].decl_path.clone();
        self.check_block(&decl.block, pid, &path)?;
        self.scopes.pop();
        Ok(())
    }

    fn resolve_type(&self, t: &TypeExpr) -> Result<Type> {
        match t {
            TypeExpr::Named(name) => match name.key().as_str() {
                "integer" => Ok(Type::Integer),
                "real" => Ok(Type::Real),
                "boolean" => Ok(Type::Boolean),
                "char" => Ok(Type::Char),
                other => match self.lookup(other) {
                    Some(ScopeEntry::TypeName(ty)) => Ok(ty.clone()),
                    _ => Err(err(format!("unknown type `{name}`"), name.span)),
                },
            },
            TypeExpr::Array { lo, hi, elem, span } => {
                let lo = self.resolve_bound(lo, *span)?;
                let hi = self.resolve_bound(hi, *span)?;
                if lo > hi {
                    return Err(err(
                        format!("array lower bound {lo} exceeds upper bound {hi}"),
                        *span,
                    ));
                }
                let elem = Box::new(self.resolve_type(elem)?);
                Ok(Type::Array { lo, hi, elem })
            }
        }
    }

    fn resolve_bound(&self, b: &ArrayBound, span: Span) -> Result<i64> {
        match b {
            ArrayBound::Lit(n) => Ok(*n),
            ArrayBound::Const(name) => match self.lookup(&name.key()) {
                Some(ScopeEntry::Const(Value::Int(n))) => Ok(*n),
                Some(ScopeEntry::Const(_)) => Err(err(
                    format!("array bound `{name}` is not an integer constant"),
                    span,
                )),
                _ => Err(err(format!("unknown constant `{name}`"), name.span)),
            },
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn check_stmt(&mut self, s: &Stmt) -> Result<()> {
        self.proc_of_stmt.insert(s.id, self.current_proc);
        match &s.kind {
            StmtKind::Empty => Ok(()),
            StmtKind::Assign { lhs, rhs } => {
                let lty = self.resolve_lvalue(lhs)?;
                let rty = self.check_expr(rhs)?;
                if !lty.assignable_from(&rty) {
                    return Err(err(format!("cannot assign `{rty}` to `{lty}`"), s.span));
                }
                Ok(())
            }
            StmtKind::Call { name, args } => {
                let pid = match self.lookup(&name.key()) {
                    Some(ScopeEntry::Proc(pid)) => *pid,
                    Some(_) => return Err(err(format!("`{name}` is not a procedure"), name.span)),
                    None => return Err(err(format!("undeclared procedure `{name}`"), name.span)),
                };
                if self.procs[pid.0 as usize].is_function() {
                    return Err(err(
                        format!("function `{name}` called as a statement"),
                        name.span,
                    ));
                }
                self.check_call_args(pid, name, args)?;
                self.call_res.insert(s.id, pid);
                Ok(())
            }
            StmtKind::Compound(stmts) => {
                for st in stmts {
                    self.check_stmt(st)?;
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expect_bool(cond)?;
                self.check_stmt(then_branch)?;
                if let Some(e) = else_branch {
                    self.check_stmt(e)?;
                }
                Ok(())
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            } => {
                let sty = self.check_expr(scrutinee)?;
                if !matches!(sty, Type::Integer | Type::Char | Type::Boolean) {
                    return Err(err(
                        format!("case selector must be an ordinal type, found `{sty}`"),
                        scrutinee.span,
                    ));
                }
                let mut seen: Vec<Value> = Vec::new();
                for arm in arms {
                    for label in &arm.labels {
                        let v = match (label, &sty) {
                            (ConstValue::Int(n), Type::Integer) => Value::Int(*n),
                            (ConstValue::Bool(b), Type::Boolean) => Value::Bool(*b),
                            (ConstValue::Str(c), Type::Char) => match single_char(c) {
                                Some(ch) => Value::Char(ch),
                                None => {
                                    return Err(err(
                                        format!("case label does not match selector type `{sty}`"),
                                        s.span,
                                    ))
                                }
                            },
                            _ => {
                                return Err(err(
                                    format!("case label does not match selector type `{sty}`"),
                                    s.span,
                                ))
                            }
                        };
                        if seen.contains(&v) {
                            return Err(err(format!("duplicate case label `{v}`"), s.span));
                        }
                        seen.push(v);
                    }
                    self.check_stmt(&arm.stmt)?;
                }
                if let Some(e) = else_arm {
                    self.check_stmt(e)?;
                }
                // Scrutinee temp (evaluated once).
                let owner = self.current_proc;
                let level = self.procs[owner.0 as usize].level;
                let tmp_name = Ident::synthetic(format!("case@{}", s.id.0));
                let tmp = self.new_var(&tmp_name, sty, VarKind::Temp, owner, level);
                self.case_temps.insert(s.id, tmp);
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.expect_bool(cond)?;
                self.check_stmt(body)
            }
            StmtKind::Repeat { body, cond } => {
                for st in body {
                    self.check_stmt(st)?;
                }
                self.expect_bool(cond)
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let vid = match self.lookup(&var.key()) {
                    Some(ScopeEntry::Var(v)) => *v,
                    _ => return Err(err(format!("undeclared loop variable `{var}`"), var.span)),
                };
                if self.vars[vid.0 as usize].ty != Type::Integer {
                    return Err(err(
                        format!("loop variable `{var}` must be integer"),
                        var.span,
                    ));
                }
                // Key the control variable under a synthetic expr id? The
                // `for` header has no expression node for `var`; lowering
                // re-resolves it via `for_var_res`, recorded here keyed by
                // statement id through `for_temps`' sibling map.
                self.res.insert(
                    ExprId(u32::MAX - s.id.0), // reserved key space for for-vars
                    NameRes::Var(vid),
                );
                let fty = self.check_expr(from)?;
                let tty = self.check_expr(to)?;
                if fty != Type::Integer || tty != Type::Integer {
                    return Err(err("for-loop bounds must be integer", s.span));
                }
                // Synthesize the hidden limit temporary (Pascal evaluates
                // the final value once).
                let owner = self.current_proc;
                let level = self.procs[owner.0 as usize].level;
                let tmp_name = Ident::synthetic(format!("limit@{}", s.id.0));
                let tmp = self.new_var(&tmp_name, Type::Integer, VarKind::Temp, owner, level);
                self.for_temps.insert(s.id, tmp);
                self.check_stmt(body)
            }
            StmtKind::Goto(label) => {
                // Resolve lexically: nearest enclosing procedure declaring
                // the label.
                let mut cur = Some(self.current_proc);
                while let Some(p) = cur {
                    if self
                        .labels_of_proc
                        .get(&p)
                        .is_some_and(|ls| ls.contains(&label.key()))
                    {
                        self.goto_res.insert(s.id, (p, label.key()));
                        return Ok(());
                    }
                    cur = self.procs[p.0 as usize].parent;
                }
                Err(err(format!("undeclared label `{label}`"), label.span))
            }
            StmtKind::Labeled { stmt, .. } => self.check_stmt(stmt),
            StmtKind::Read { args, .. } => {
                for lv in args {
                    let ty = self.resolve_lvalue(lv)?;
                    if !matches!(ty, Type::Integer | Type::Real | Type::Char) {
                        return Err(err(format!("cannot read into a `{ty}` value"), lv.span));
                    }
                }
                Ok(())
            }
            StmtKind::Write { args, .. } => {
                for e in args {
                    self.check_expr(e)?;
                }
                Ok(())
            }
        }
    }

    fn expect_bool(&mut self, e: &Expr) -> Result<()> {
        let ty = self.check_expr(e)?;
        if ty != Type::Boolean {
            return Err(err(
                format!("condition must be boolean, found `{ty}`"),
                e.span,
            ));
        }
        Ok(())
    }

    fn check_call_args(&mut self, pid: ProcId, name: &Ident, args: &[Expr]) -> Result<()> {
        let params = self.procs[pid.0 as usize].params.clone();
        if params.len() != args.len() {
            return Err(err(
                format!(
                    "`{name}` expects {} argument(s), got {}",
                    params.len(),
                    args.len()
                ),
                name.span,
            ));
        }
        for (param, arg) in params.iter().zip(args) {
            let pinfo = self.vars[param.0 as usize].clone();
            let mode = pinfo.param_mode().expect("param var has param kind");
            let aty = self.check_expr(arg)?;
            if mode.is_reference() {
                // Must be an lvalue of the exact same type.
                let is_lvalue = match &arg.kind {
                    ExprKind::Name(_) => matches!(self.res.get(&arg.id), Some(NameRes::Var(_))),
                    ExprKind::Index { .. } => true,
                    _ => false,
                };
                if !is_lvalue {
                    return Err(err(
                        format!(
                            "argument for `{}` parameter `{}` must be a variable",
                            mode, pinfo.name
                        ),
                        arg.span,
                    ));
                }
                if let Some(NameRes::Var(v)) = self.res.get(&arg.id) {
                    if self.vars[v.0 as usize].param_mode() == Some(ParamMode::In) {
                        return Err(err(
                            format!(
                                "cannot pass read-only `in` parameter `{}` by reference",
                                self.vars[v.0 as usize].name
                            ),
                            arg.span,
                        ));
                    }
                }
                if aty != pinfo.ty {
                    return Err(err(
                        format!(
                            "type mismatch for `var` parameter `{}`: expected `{}`, got `{aty}`",
                            pinfo.name, pinfo.ty
                        ),
                        arg.span,
                    ));
                }
            } else if !pinfo.ty.assignable_from(&aty) {
                return Err(err(
                    format!(
                        "type mismatch for parameter `{}`: expected `{}`, got `{aty}`",
                        pinfo.name, pinfo.ty
                    ),
                    arg.span,
                ));
            }
        }
        Ok(())
    }

    /// Resolves an assignment target, recording resolution and type under
    /// the lvalue's id. Handles the `f := expr` function-result convention
    /// and rejects writes to `in` parameters and loop temps.
    fn resolve_lvalue(&mut self, lv: &LValue) -> Result<Type> {
        let key = lv.base.key();
        // Function result assignment: the base names the current function
        // (or an enclosing one, per Pascal).
        let mut cur = Some(self.current_proc);
        while let Some(p) = cur {
            let info = &self.procs[p.0 as usize];
            if info.name.to_ascii_lowercase() == key {
                if let Some(rv) = info.result_var {
                    if lv.index.is_some() {
                        return Err(err("cannot index a function result", lv.span));
                    }
                    let ty = self.vars[rv.0 as usize].ty.clone();
                    self.res.insert(lv.id, NameRes::Var(rv));
                    self.expr_ty.insert(lv.id, ty.clone());
                    return Ok(ty);
                }
            }
            cur = info.parent;
        }

        let vid = match self.lookup(&key) {
            Some(ScopeEntry::Var(v)) => *v,
            Some(ScopeEntry::Const(_)) => {
                return Err(err(
                    format!("cannot assign to constant `{}`", lv.base),
                    lv.span,
                ))
            }
            _ => return Err(err(format!("undeclared variable `{}`", lv.base), lv.span)),
        };
        let info = self.vars[vid.0 as usize].clone();
        if info.param_mode() == Some(ParamMode::In) {
            return Err(err(
                format!("cannot assign to read-only `in` parameter `{}`", info.name),
                lv.span,
            ));
        }
        self.res.insert(lv.id, NameRes::Var(vid));
        let ty = match &lv.index {
            None => info.ty.clone(),
            Some(idx) => {
                let ity = self.check_expr(idx)?;
                if ity != Type::Integer {
                    return Err(err("array index must be integer", idx.span));
                }
                match &info.ty {
                    Type::Array { elem, .. } => (**elem).clone(),
                    other => {
                        return Err(err(
                            format!("cannot index non-array `{}` of type `{other}`", info.name),
                            lv.span,
                        ))
                    }
                }
            }
        };
        self.expr_ty.insert(lv.id, ty.clone());
        Ok(ty)
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn check_expr(&mut self, e: &Expr) -> Result<Type> {
        let ty = self.infer_expr(e)?;
        self.expr_ty.insert(e.id, ty.clone());
        Ok(ty)
    }

    fn infer_expr(&mut self, e: &Expr) -> Result<Type> {
        match &e.kind {
            ExprKind::IntLit(_) => Ok(Type::Integer),
            ExprKind::RealLit(_) => Ok(Type::Real),
            ExprKind::BoolLit(_) => Ok(Type::Boolean),
            ExprKind::StrLit(s) => Ok(if s.chars().count() == 1 {
                Type::Char
            } else {
                Type::String
            }),
            ExprKind::Name(name) => match self.lookup(&name.key()) {
                Some(ScopeEntry::Var(v)) => {
                    let v = *v;
                    if self.vars[v.0 as usize].kind == VarKind::Result {
                        return Err(err(
                            format!("cannot read function result `{name}`"),
                            name.span,
                        ));
                    }
                    self.res.insert(e.id, NameRes::Var(v));
                    Ok(self.vars[v.0 as usize].ty.clone())
                }
                Some(ScopeEntry::Const(value)) => {
                    let value = value.clone();
                    let ty = value.type_of();
                    self.res.insert(e.id, NameRes::Const(value));
                    Ok(ty)
                }
                Some(ScopeEntry::Proc(pid)) => {
                    let pid = *pid;
                    let info = self.procs[pid.0 as usize].clone();
                    match info.return_type {
                        Some(rt) if info.params.is_empty() => {
                            self.res.insert(e.id, NameRes::Proc(pid));
                            Ok(rt)
                        }
                        Some(_) => Err(err(
                            format!("function `{name}` requires arguments"),
                            name.span,
                        )),
                        None => Err(err(
                            format!("procedure `{name}` used in an expression"),
                            name.span,
                        )),
                    }
                }
                Some(ScopeEntry::TypeName(_)) => {
                    Err(err(format!("type `{name}` used as a value"), name.span))
                }
                None => Err(err(format!("undeclared identifier `{name}`"), name.span)),
            },
            ExprKind::Index { base, index } => {
                let ity = self.check_expr(index)?;
                if ity != Type::Integer {
                    return Err(err("array index must be integer", index.span));
                }
                match self.lookup(&base.key()) {
                    Some(ScopeEntry::Var(v)) => {
                        let v = *v;
                        self.res.insert(e.id, NameRes::Var(v));
                        match &self.vars[v.0 as usize].ty {
                            Type::Array { elem, .. } => Ok((**elem).clone()),
                            other => Err(err(
                                format!("cannot index non-array of type `{other}`"),
                                base.span,
                            )),
                        }
                    }
                    _ => Err(err(format!("undeclared array `{base}`"), base.span)),
                }
            }
            ExprKind::Call { name, args } => {
                if let Some(intr) = Intrinsic::lookup(&name.key()) {
                    if self.lookup(&name.key()).is_none() {
                        self.res.insert(e.id, NameRes::Intrinsic(intr));
                        return self.check_intrinsic(intr, name, args);
                    }
                }
                match self.lookup(&name.key()) {
                    Some(ScopeEntry::Proc(pid)) => {
                        let pid = *pid;
                        let info = self.procs[pid.0 as usize].clone();
                        let Some(rt) = info.return_type else {
                            return Err(err(
                                format!("procedure `{name}` used in an expression"),
                                name.span,
                            ));
                        };
                        self.check_call_args(pid, name, args)?;
                        self.res.insert(e.id, NameRes::Proc(pid));
                        Ok(rt)
                    }
                    Some(_) => Err(err(format!("`{name}` is not a function"), name.span)),
                    None => Err(err(format!("undeclared function `{name}`"), name.span)),
                }
            }
            ExprKind::Unary { op, operand } => {
                let ty = self.check_expr(operand)?;
                match op {
                    UnOp::Neg if ty.is_numeric() => Ok(ty),
                    UnOp::Neg => Err(err(format!("cannot negate a `{ty}` value"), e.span)),
                    UnOp::Not if ty == Type::Boolean => Ok(ty),
                    UnOp::Not => Err(err(
                        format!("`not` requires a boolean, found `{ty}`"),
                        e.span,
                    )),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                self.binary_type(*op, &lt, &rt, e.span)
            }
        }
    }

    fn check_intrinsic(&mut self, intr: Intrinsic, name: &Ident, args: &[Expr]) -> Result<Type> {
        if args.len() != 1 {
            return Err(err(
                format!("`{}` expects exactly one argument", intr.name()),
                name.span,
            ));
        }
        let aty = self.check_expr(&args[0])?;
        let ok = |t: Type| Ok(t);
        match intr {
            Intrinsic::Abs | Intrinsic::Sqr if aty.is_numeric() => ok(aty),
            Intrinsic::Odd if aty == Type::Integer => ok(Type::Boolean),
            Intrinsic::Ord if aty == Type::Char => ok(Type::Integer),
            Intrinsic::Chr if aty == Type::Integer => ok(Type::Char),
            Intrinsic::Trunc | Intrinsic::Round if aty == Type::Real => ok(Type::Integer),
            _ => Err(err(
                format!("invalid argument type `{aty}` for `{}`", intr.name()),
                args[0].span,
            )),
        }
    }

    fn binary_type(&self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> Result<Type> {
        use BinOp::*;
        match op {
            Add | Sub | Mul => {
                if lt.is_numeric() && rt.is_numeric() {
                    Ok(if *lt == Type::Real || *rt == Type::Real {
                        Type::Real
                    } else {
                        Type::Integer
                    })
                } else {
                    Err(err(
                        format!("operator `{op}` requires numbers, found `{lt}` and `{rt}`"),
                        span,
                    ))
                }
            }
            FDiv => {
                if lt.is_numeric() && rt.is_numeric() {
                    Ok(Type::Real)
                } else {
                    Err(err(
                        format!("operator `/` requires numbers, found `{lt}` and `{rt}`"),
                        span,
                    ))
                }
            }
            Div | Mod => {
                if *lt == Type::Integer && *rt == Type::Integer {
                    Ok(Type::Integer)
                } else {
                    Err(err(
                        format!("operator `{op}` requires integers, found `{lt}` and `{rt}`"),
                        span,
                    ))
                }
            }
            And | Or => {
                if *lt == Type::Boolean && *rt == Type::Boolean {
                    Ok(Type::Boolean)
                } else {
                    Err(err(
                        format!("operator `{op}` requires booleans, found `{lt}` and `{rt}`"),
                        span,
                    ))
                }
            }
            Eq | Ne | Lt | Le | Gt | Ge => {
                let comparable = (lt.is_numeric() && rt.is_numeric())
                    || (lt == rt && lt.is_scalar())
                    || (*lt == Type::String && *rt == Type::String);
                if comparable {
                    Ok(Type::Boolean)
                } else {
                    Err(err(format!("cannot compare `{lt}` with `{rt}`"), span))
                }
            }
        }
    }
}

/// The reserved expression-id key under which a `for` statement's control
/// variable resolution is recorded (the `for` header has no expression node
/// for the variable itself).
pub fn for_var_key(stmt: StmtId) -> ExprId {
    ExprId(u32::MAX - stmt.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Module {
        compile(src).unwrap_or_else(|e| panic!("sema failed: {e}\nsource: {src}"))
    }

    fn check_err(src: &str) -> Diagnostic {
        match compile(src) {
            Ok(_) => panic!("expected error for: {src}"),
            Err(e) => e,
        }
    }

    #[test]
    fn globals_and_locals_are_distinguished() {
        let m = check(
            "program t; var g: integer;
             procedure p; var l: integer; begin l := g end;
             begin g := 1 end.",
        );
        let p = m.proc_by_name("p").unwrap();
        let g = m.var_in_scope(MAIN_PROC, "g").unwrap();
        let l = m.var_in_scope(p, "l").unwrap();
        assert_eq!(m.var(g).kind, VarKind::Global);
        assert_eq!(m.var(l).kind, VarKind::Local);
        assert!(m.is_nonlocal(p, g));
        assert!(!m.is_nonlocal(p, l));
    }

    #[test]
    fn nested_scope_resolution() {
        let m = check(
            "program t; var x: integer;
             procedure outer; var x: integer;
               procedure inner; begin x := 1 end;
             begin inner end;
             begin x := 0 end.",
        );
        // inner's x must resolve to outer's x, not the global.
        let outer = m.proc_by_name("outer").unwrap();
        let inner = m.proc_by_name("inner").unwrap();
        let x_inner = m.var_in_scope(inner, "x").unwrap();
        assert_eq!(m.var(x_inner).owner, outer);
    }

    #[test]
    fn function_result_assignment() {
        let m = check(
            "program t; var r: integer;
             function f(y: integer): integer; begin f := y + 1 end;
             begin r := f(1) end.",
        );
        let f = m.proc_by_name("f").unwrap();
        assert!(m.proc(f).result_var.is_some());
    }

    #[test]
    fn recursive_function_calls_allowed() {
        check(
            "program t; var r: integer;
             function fact(n: integer): integer;
             begin
               if n <= 1 then fact := 1 else fact := n * fact(n - 1)
             end;
             begin r := fact(5) end.",
        );
    }

    #[test]
    fn type_errors_detected() {
        assert!(check_err("program t; var x: integer; begin x := true end.")
            .message
            .contains("assign"));
        assert!(
            check_err("program t; var x: integer; begin if x then x := 1 end.")
                .message
                .contains("boolean")
        );
        assert!(
            check_err("program t; var x: integer; b: boolean; begin x := x div b end.")
                .message
                .contains("integers")
        );
    }

    #[test]
    fn undeclared_names_detected() {
        assert!(check_err("program t; begin x := 1 end.")
            .message
            .contains("undeclared"));
        assert!(check_err("program t; begin p(1) end.")
            .message
            .contains("undeclared"));
    }

    #[test]
    fn duplicate_declaration_detected() {
        assert!(
            check_err("program t; var x: integer; x: integer; begin end.")
                .message
                .contains("duplicate")
        );
    }

    #[test]
    fn var_param_requires_lvalue() {
        let e = check_err(
            "program t; var x: integer;
             procedure p(var y: integer); begin y := 1 end;
             begin p(x + 1) end.",
        );
        assert!(e.message.contains("variable"), "{}", e.message);
    }

    #[test]
    fn in_param_is_read_only() {
        let e = check_err(
            "program t;
             procedure p(in x: integer); begin x := 1 end;
             begin end.",
        );
        assert!(e.message.contains("read-only"), "{}", e.message);
    }

    #[test]
    fn in_param_cannot_be_passed_by_reference() {
        let e = check_err(
            "program t;
             procedure q(var y: integer); begin y := 1 end;
             procedure p(in x: integer); begin q(x) end;
             begin end.",
        );
        assert!(e.message.contains("read-only"), "{}", e.message);
    }

    #[test]
    fn arity_mismatch_detected() {
        let e = check_err(
            "program t;
             procedure p(x: integer); begin end;
             begin p(1, 2) end.",
        );
        assert!(e.message.contains("argument"), "{}", e.message);
    }

    #[test]
    fn array_types_via_const_bound() {
        let m = check(
            "program t; const n = 3;
             type arr = array[1..n] of integer;
             var a: arr;
             begin a[1] := 1 end.",
        );
        let a = m.var_in_scope(MAIN_PROC, "a").unwrap();
        assert_eq!(
            m.var(a).ty,
            Type::Array {
                lo: 1,
                hi: 3,
                elem: Box::new(Type::Integer)
            }
        );
    }

    #[test]
    fn global_goto_resolves_to_enclosing_proc() {
        let m = check(
            "program t; label 9;
             procedure p;
               procedure q; begin goto 9 end;
             begin q end;
             begin 9: end.",
        );
        let (owner, label) = m
            .goto_res
            .values()
            .next()
            .expect("one goto resolved")
            .clone();
        assert_eq!(owner, MAIN_PROC);
        assert_eq!(label, "9");
    }

    #[test]
    fn undeclared_label_detected() {
        assert!(check_err("program t; begin goto 9 end.")
            .message
            .contains("label"));
    }

    #[test]
    fn intrinsics_type_check() {
        check(
            "program t; var x: integer; r: real; b: boolean; c: char;
             begin
               x := abs(-3); x := sqr(2); b := odd(x);
               x := ord('a'); c := chr(65);
               x := trunc(1.5); x := round(r)
             end.",
        );
        assert!(
            check_err("program t; var b: boolean; begin b := odd(1.5) end.")
                .message
                .contains("invalid argument")
        );
    }

    #[test]
    fn for_loop_creates_limit_temp() {
        let m = check(
            "program t; var i, s: integer;
             begin s := 0; for i := 1 to 10 do s := s + i end.",
        );
        assert_eq!(m.for_temps.len(), 1);
        let tmp = *m.for_temps.values().next().unwrap();
        assert_eq!(m.var(tmp).kind, VarKind::Temp);
    }

    #[test]
    fn paper_figure4_program_analyzes() {
        let src = crate::testprogs::SQRTEST;
        let m = check(src);
        // 12 procedures/functions + main.
        assert_eq!(m.procs.len(), 14);
        assert!(m.proc_by_name("decrement").unwrap().0 > 0);
        assert!(m.proc(m.proc_by_name("decrement").unwrap()).is_function());
    }

    #[test]
    fn proc_body_accessor_finds_nested() {
        let m = check(
            "program t;
             procedure a; procedure b; begin end; begin b end;
             begin a end.",
        );
        let b = m.proc_by_name("b").unwrap();
        assert!(m.proc_decl(b).is_some());
        assert!(m.proc_body(b).is_empty() || !m.proc_body(b).is_empty());
        assert_eq!(m.proc_decl(b).unwrap().name.name, "b");
    }

    #[test]
    fn proc_of_stmt_is_recorded() {
        let m = check(
            "program t; var x: integer;
             procedure p; begin x := 1 end;
             begin p end.",
        );
        let p = m.proc_by_name("p").unwrap();
        let body = m.proc_body(p);
        assert_eq!(m.proc_of_stmt[&body[0].id], p);
    }

    #[test]
    fn analyze_then_reanalyze_is_stable() {
        let src = "program t; var x: integer; begin x := 1 end.";
        let p1 = parse_program(src).unwrap();
        let m1 = analyze(p1.clone()).unwrap();
        let m2 = analyze(p1).unwrap();
        assert_eq!(m1.vars.len(), m2.vars.len());
        assert_eq!(m1.procs.len(), m2.procs.len());
    }
}
