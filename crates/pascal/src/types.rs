//! Semantic types for the Pascal subset.

use std::fmt;

/// A fully resolved type.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `integer`
    Integer,
    /// `real`
    Real,
    /// `boolean`
    Boolean,
    /// `char`
    Char,
    /// `array[lo..hi] of elem`
    Array {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Element type.
        elem: Box<Type>,
    },
    /// String literals (only usable in `write` arguments and comparisons
    /// against other strings; not a declarable variable type).
    String,
}

impl Type {
    /// Whether this is a numeric scalar type.
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Integer | Type::Real)
    }

    /// Whether this is a scalar (non-array, non-string) type.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Type::Integer | Type::Real | Type::Boolean | Type::Char
        )
    }

    /// Whether a value of `self` can be assigned from a value of `from`
    /// (identity, or the implicit integer→real widening).
    pub fn assignable_from(&self, from: &Type) -> bool {
        self == from || (matches!(self, Type::Real) && matches!(from, Type::Integer))
    }

    /// Number of scalar elements an array type holds (1 for scalars).
    pub fn element_count(&self) -> i64 {
        match self {
            Type::Array { lo, hi, .. } => (hi - lo + 1).max(0),
            _ => 1,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Integer => write!(f, "integer"),
            Type::Real => write!(f, "real"),
            Type::Boolean => write!(f, "boolean"),
            Type::Char => write!(f, "char"),
            Type::Array { lo, hi, elem } => write!(f, "array[{lo}..{hi}] of {elem}"),
            Type::String => write!(f, "string"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignability() {
        assert!(Type::Real.assignable_from(&Type::Integer));
        assert!(!Type::Integer.assignable_from(&Type::Real));
        assert!(Type::Integer.assignable_from(&Type::Integer));
        assert!(!Type::Boolean.assignable_from(&Type::Integer));
    }

    #[test]
    fn display_round_trips_array() {
        let t = Type::Array {
            lo: 1,
            hi: 10,
            elem: Box::new(Type::Integer),
        };
        assert_eq!(t.to_string(), "array[1..10] of integer");
        assert_eq!(t.element_count(), 10);
    }

    #[test]
    fn empty_array_has_zero_elements() {
        let t = Type::Array {
            lo: 5,
            hi: 4,
            elem: Box::new(Type::Integer),
        };
        assert_eq!(t.element_count(), 0);
    }
}
