//! Source positions and spans.
//!
//! Every token, AST node, and diagnostic carries a [`Span`] pointing back
//! into the original source text. Spans survive CFG lowering and program
//! transformation, which is what lets the debugger present queries in terms
//! of the *original* program (the paper's §6.1 "transparent debugging").

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Examples
    /// ```
    /// use gadt_pascal::span::Span;
    /// let s = Span::new(3, 7);
    /// assert_eq!(s.len(), 4);
    /// ```
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-length placeholder span (used for synthesized constructs).
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Whether `self` fully contains `other`.
    pub fn contains(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Extracts the spanned text from `source`.
    pub fn text<'a>(&self, source: &'a str) -> &'a str {
        &source[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column pairs for one source file.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset at which each line starts; `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map by scanning `source` once.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Converts a byte offset to a [`LineCol`].
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(2, 5);
        let b = Span::new(9, 12);
        assert_eq!(a.merge(b), Span::new(2, 12));
        assert_eq!(b.merge(a), Span::new(2, 12));
    }

    #[test]
    fn contains_is_inclusive_of_equal_span() {
        let a = Span::new(2, 5);
        assert!(a.contains(a));
        assert!(a.contains(Span::new(3, 4)));
        assert!(!a.contains(Span::new(1, 4)));
    }

    #[test]
    fn text_extraction() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).text(src), "world");
    }

    #[test]
    fn line_map_basics() {
        let map = LineMap::new("ab\ncd\n\nx");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(6), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(7), LineCol { line: 4, col: 1 });
    }

    #[test]
    fn line_map_offset_at_newline() {
        let map = LineMap::new("ab\ncd");
        // The newline itself belongs to line 1.
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
    }
}
