//! Mutable AST visitors and structural normalization.
//!
//! The immutable walkers in [`crate::ast`] serve the analyses; this
//! module adds their mutating counterparts, which the fault-injection
//! engine (`gadt-mutate`) uses to plant bugs into parsed programs, plus
//! deterministic id renumbering and a normal form for AST comparison
//! "modulo spans" (used by the parse → print → re-parse round-trip
//! suite).

use crate::ast::*;
use crate::span::Span;

/// Visits `stmt` and every statement nested inside it, pre-order.
///
/// The callback runs *before* the children are visited, so a callback
/// that rewrites `stmt.kind` (e.g. replacing an assignment with a
/// compound) will have the replacement's children visited too.
pub fn walk_stmt_mut(stmt: &mut Stmt, visit: &mut dyn FnMut(&mut Stmt)) {
    visit(stmt);
    match &mut stmt.kind {
        StmtKind::Compound(stmts) | StmtKind::Repeat { body: stmts, .. } => {
            for s in stmts {
                walk_stmt_mut(s, visit);
            }
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            walk_stmt_mut(then_branch, visit);
            if let Some(e) = else_branch {
                walk_stmt_mut(e, visit);
            }
        }
        StmtKind::Case { arms, else_arm, .. } => {
            for a in arms {
                walk_stmt_mut(&mut a.stmt, visit);
            }
            if let Some(e) = else_arm {
                walk_stmt_mut(e, visit);
            }
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => walk_stmt_mut(body, visit),
        StmtKind::Labeled { stmt, .. } => walk_stmt_mut(stmt, visit),
        StmtKind::Empty
        | StmtKind::Assign { .. }
        | StmtKind::Call { .. }
        | StmtKind::Goto(_)
        | StmtKind::Read { .. }
        | StmtKind::Write { .. } => {}
    }
}

/// Visits `expr` and every expression nested inside it, pre-order.
pub fn walk_expr_mut(expr: &mut Expr, visit: &mut dyn FnMut(&mut Expr)) {
    visit(expr);
    match &mut expr.kind {
        ExprKind::Index { index, .. } => walk_expr_mut(index, visit),
        ExprKind::Call { args, .. } => {
            for a in args {
                walk_expr_mut(a, visit);
            }
        }
        ExprKind::Unary { operand, .. } => walk_expr_mut(operand, visit),
        ExprKind::Binary { lhs, rhs, .. } => {
            walk_expr_mut(lhs, visit);
            walk_expr_mut(rhs, visit);
        }
        ExprKind::IntLit(_)
        | ExprKind::RealLit(_)
        | ExprKind::BoolLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Name(_) => {}
    }
}

/// Visits the expressions owned *directly* by one statement node (not
/// those of nested statements), each recursively via [`walk_expr_mut`].
/// Array-index expressions of assignment and `read` targets are
/// included.
pub fn walk_stmt_exprs_mut(stmt: &mut Stmt, visit: &mut dyn FnMut(&mut Expr)) {
    match &mut stmt.kind {
        StmtKind::Assign { lhs, rhs } => {
            if let Some(i) = &mut lhs.index {
                walk_expr_mut(i, visit);
            }
            walk_expr_mut(rhs, visit);
        }
        StmtKind::Call { args, .. } | StmtKind::Write { args, .. } => {
            for a in args {
                walk_expr_mut(a, visit);
            }
        }
        StmtKind::If { cond, .. }
        | StmtKind::While { cond, .. }
        | StmtKind::Repeat { cond, .. } => walk_expr_mut(cond, visit),
        StmtKind::Case { scrutinee, .. } => walk_expr_mut(scrutinee, visit),
        StmtKind::For { from, to, .. } => {
            walk_expr_mut(from, visit);
            walk_expr_mut(to, visit);
        }
        StmtKind::Read { args, .. } => {
            for lv in args {
                if let Some(i) = &mut lv.index {
                    walk_expr_mut(i, visit);
                }
            }
        }
        StmtKind::Empty | StmtKind::Compound(_) | StmtKind::Goto(_) | StmtKind::Labeled { .. } => {}
    }
}

/// Visits every procedure declaration of the program, depth-first in
/// declaration order (the same order as [`Program::walk_procs`]). The
/// callback receives each declaration before its nested declarations;
/// it should restrict itself to the declaration's *own* body
/// (`block.body`), since nested procedures get their own visit.
pub fn walk_procs_mut(program: &mut Program, visit: &mut dyn FnMut(&mut ProcDecl)) {
    fn rec(block: &mut Block, visit: &mut dyn FnMut(&mut ProcDecl)) {
        for p in &mut block.procs {
            visit(p);
            rec(&mut p.block, visit);
        }
    }
    rec(&mut program.block, visit);
}

/// Reassigns every statement and expression id (including `LValue` ids)
/// in a deterministic traversal order — procedures depth-first in
/// declaration order, then the main body — and resets the program's
/// fresh-id counters.
///
/// Mutation operators clone or synthesize AST nodes, which leaves
/// duplicate or placeholder ids behind; renumbering restores the
/// "ids are unique per program" invariant semantic analysis relies on.
pub fn renumber(program: &mut Program) {
    let mut next_stmt: u32 = 0;
    let mut next_expr: u32 = 0;
    {
        let mut number_body = |body: &mut Vec<Stmt>| {
            for s in body {
                walk_stmt_mut(s, &mut |s| {
                    s.id = StmtId(next_stmt);
                    next_stmt += 1;
                    if let StmtKind::Assign { lhs, .. } = &mut s.kind {
                        lhs.id = ExprId(next_expr);
                        next_expr += 1;
                    }
                    if let StmtKind::Read { args, .. } = &mut s.kind {
                        for lv in args {
                            lv.id = ExprId(next_expr);
                            next_expr += 1;
                        }
                    }
                    walk_stmt_exprs_mut(s, &mut |e| {
                        e.id = ExprId(next_expr);
                        next_expr += 1;
                    });
                });
            }
        };
        let mut bodies: Vec<&mut Vec<Stmt>> = Vec::new();
        collect_bodies(&mut program.block, &mut bodies);
        for body in bodies {
            number_body(body);
        }
    }
    program.next_stmt_id = next_stmt;
    program.next_expr_id = next_expr;
}

/// Collects every procedure body (depth-first, declaration order) and
/// finally the enclosing block's own body — the canonical body order
/// used by [`renumber`].
fn collect_bodies<'a>(block: &'a mut Block, out: &mut Vec<&'a mut Vec<Stmt>>) {
    for p in &mut block.procs {
        collect_bodies(&mut p.block, out);
    }
    out.push(&mut block.body);
}

/// Rewrites every span in the program to [`Span::dummy`], erasing
/// source positions. Combined with [`normalize`] this gives the
/// "equality modulo spans" notion the round-trip suite asserts.
pub fn strip_spans(program: &mut Program) {
    program.span = Span::dummy();
    program.name.span = Span::dummy();
    strip_block(&mut program.block);
}

fn strip_block(block: &mut Block) {
    block.span = Span::dummy();
    for l in &mut block.labels {
        l.span = Span::dummy();
    }
    for c in &mut block.consts {
        c.span = Span::dummy();
        c.name.span = Span::dummy();
    }
    for t in &mut block.types {
        t.span = Span::dummy();
        t.name.span = Span::dummy();
        strip_type(&mut t.ty);
    }
    for v in &mut block.vars {
        v.span = Span::dummy();
        for n in &mut v.names {
            n.span = Span::dummy();
        }
        strip_type(&mut v.ty);
    }
    for p in &mut block.procs {
        p.span = Span::dummy();
        p.name.span = Span::dummy();
        for g in &mut p.params {
            g.span = Span::dummy();
            for n in &mut g.names {
                n.span = Span::dummy();
            }
            strip_type(&mut g.ty);
        }
        if let Some(rt) = &mut p.return_type {
            strip_type(rt);
        }
        strip_block(&mut p.block);
    }
    for s in &mut block.body {
        strip_stmt(s);
    }
}

fn strip_type(t: &mut TypeExpr) {
    match t {
        TypeExpr::Named(n) => n.span = Span::dummy(),
        TypeExpr::Array { lo, hi, elem, span } => {
            *span = Span::dummy();
            for b in [lo, hi] {
                if let ArrayBound::Const(c) = b {
                    c.span = Span::dummy();
                }
            }
            strip_type(elem);
        }
    }
}

fn strip_stmt(stmt: &mut Stmt) {
    walk_stmt_mut(stmt, &mut |s| {
        s.span = Span::dummy();
        match &mut s.kind {
            StmtKind::Assign { lhs, .. } => {
                lhs.span = Span::dummy();
                lhs.base.span = Span::dummy();
            }
            StmtKind::Call { name, .. } => name.span = Span::dummy(),
            StmtKind::For { var, .. } => var.span = Span::dummy(),
            StmtKind::Goto(l) => l.span = Span::dummy(),
            StmtKind::Labeled { label, .. } => label.span = Span::dummy(),
            StmtKind::Read { args, .. } => {
                for lv in args {
                    lv.span = Span::dummy();
                    lv.base.span = Span::dummy();
                }
            }
            _ => {}
        }
        walk_stmt_exprs_mut(s, &mut |e| {
            e.span = Span::dummy();
            match &mut e.kind {
                ExprKind::Name(n) => n.span = Span::dummy(),
                ExprKind::Index { base, .. } => base.span = Span::dummy(),
                ExprKind::Call { name, .. } => name.span = Span::dummy(),
                _ => {}
            }
        });
    });
}

/// Brings a program into the comparison normal form:
///
/// 1. empty statements are pruned from statement sequences, and
///    childless compounds collapse to the empty statement (the printer
///    drops both, so a re-parsed program can differ only in them);
/// 2. spans are erased ([`strip_spans`]);
/// 3. ids are renumbered deterministically ([`renumber`]), so two
///    structurally identical programs get identical ids.
///
/// Two parses are "equal modulo spans" exactly when their normal forms
/// are `==`.
pub fn normalize(program: &mut Program) {
    normalize_block(&mut program.block);
    strip_spans(program);
    renumber(program);
}

fn normalize_block(block: &mut Block) {
    for p in &mut block.procs {
        normalize_block(&mut p.block);
    }
    for s in &mut block.body {
        normalize_stmt(s);
    }
    block.body.retain(|s| !matches!(s.kind, StmtKind::Empty));
}

fn normalize_stmt(stmt: &mut Stmt) {
    match &mut stmt.kind {
        StmtKind::Compound(stmts) | StmtKind::Repeat { body: stmts, .. } => {
            for s in stmts.iter_mut() {
                normalize_stmt(s);
            }
            stmts.retain(|s| !matches!(s.kind, StmtKind::Empty));
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => {
            normalize_stmt(then_branch);
            if let Some(e) = else_branch {
                normalize_stmt(e);
            }
        }
        StmtKind::Case { arms, else_arm, .. } => {
            for a in arms {
                normalize_stmt(&mut a.stmt);
            }
            if let Some(e) = else_arm {
                normalize_stmt(e);
            }
        }
        StmtKind::While { body, .. } | StmtKind::For { body, .. } => normalize_stmt(body),
        StmtKind::Labeled { stmt, .. } => normalize_stmt(stmt),
        _ => {}
    }
    // A compound left empty is the empty statement.
    if matches!(&stmt.kind, StmtKind::Compound(stmts) if stmts.is_empty()) {
        stmt.kind = StmtKind::Empty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn walk_stmt_mut_visits_everything() {
        let mut p = parse_program(crate::testprogs::SQRTEST).unwrap();
        let mut immut = 0;
        p.block.walk_stmts(&mut |_| immut += 1);
        crate::ast::Program::walk_procs(&p.clone(), &mut |_, pd| {
            pd.block.walk_stmts(&mut |_| immut += 1)
        });
        let mut mutable = 0;
        let mut count = |body: &mut Vec<Stmt>| {
            for s in body {
                walk_stmt_mut(s, &mut |_| mutable += 1);
            }
        };
        let mut bodies = Vec::new();
        collect_bodies(&mut p.block, &mut bodies);
        for b in bodies {
            count(b);
        }
        assert_eq!(immut, mutable);
    }

    #[test]
    fn renumber_makes_ids_unique_and_dense() {
        let mut p = parse_program(crate::testprogs::PQR).unwrap();
        // Clone a statement to create a duplicate id.
        let dup = p.block.body[0].clone();
        p.block.body.push(dup);
        renumber(&mut p);
        let mut seen = std::collections::BTreeSet::new();
        let mut bodies = Vec::new();
        collect_bodies(&mut p.block, &mut bodies);
        for body in bodies {
            for s in body.iter_mut() {
                walk_stmt_mut(s, &mut |s| {
                    assert!(seen.insert(s.id), "duplicate id {}", s.id);
                });
            }
        }
        assert_eq!(seen.len() as u32, p.next_stmt_id);
        assert_eq!(
            seen.iter().map(|s| s.0).max().map(|m| m + 1),
            Some(p.next_stmt_id)
        );
    }

    #[test]
    fn normalize_prunes_trailing_empty_statements() {
        let a = {
            let mut p = parse_program("program t; var x: integer; begin x := 1; end.").unwrap();
            normalize(&mut p);
            p
        };
        let b = {
            let mut p = parse_program("program t; var x: integer; begin x := 1 end.").unwrap();
            normalize(&mut p);
            p
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normalized_programs_detect_real_differences() {
        let mut a = parse_program("program t; var x: integer; begin x := 1 end.").unwrap();
        let mut b = parse_program("program t; var x: integer; begin x := 2 end.").unwrap();
        normalize(&mut a);
        normalize(&mut b);
        assert_ne!(a, b);
    }
}
