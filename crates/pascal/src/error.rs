//! Diagnostics shared by the lexer, parser, type checker, and interpreter.

use crate::span::{LineMap, Span};
use std::fmt;

/// Which compilation stage produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Name resolution and type checking.
    Sema,
    /// Program execution.
    Runtime,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "semantic",
            Stage::Runtime => "runtime",
        };
        write!(f, "{s}")
    }
}

/// An error with a message and source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stage that raised the error.
    pub stage: Stage,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
    /// Where in the source the error was detected.
    pub span: Span,
}

impl Diagnostic {
    /// Creates a new diagnostic.
    pub fn new(stage: Stage, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            stage,
            message: message.into(),
            span,
        }
    }

    /// Renders the diagnostic with a line/column prefix resolved via `source`.
    pub fn render(&self, source: &str) -> String {
        let map = LineMap::new(source);
        let lc = map.line_col(self.span.start);
        format!("{lc}: {} error: {}", self.stage, self.message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.stage, self.span, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Result alias used throughout the front end.
pub type Result<T, E = Diagnostic> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_line_and_column() {
        let d = Diagnostic::new(Stage::Parse, "unexpected token", Span::new(4, 5));
        let rendered = d.render("ab\ncd\n");
        assert!(rendered.starts_with("2:2:"), "got {rendered}");
        assert!(rendered.contains("unexpected token"));
    }

    #[test]
    fn display_is_nonempty() {
        let d = Diagnostic::new(Stage::Lex, "bad char", Span::new(0, 1));
        assert!(!d.to_string().is_empty());
    }
}
