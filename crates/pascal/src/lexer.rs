//! Hand-written lexer for the Pascal subset.
//!
//! Handles Pascal comments (`{ ... }` and `(* ... *)`), case-insensitive
//! keywords, integer/real literals, and quoted string literals with the
//! doubled-quote escape (`'it''s'`).

use crate::error::{Diagnostic, Result, Stage};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Tokenizes an entire source string.
///
/// The returned vector always ends with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unterminated comments/strings and
/// unrecognized characters.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::lexer::tokenize;
/// use gadt_pascal::token::TokenKind;
/// let toks = tokenize("x := 1;")?;
/// assert_eq!(toks[1].kind, TokenKind::Assign);
/// # Ok(())
/// # }
/// ```
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(c) = self.peek() else {
                self.push(TokenKind::Eof, start);
                return Ok(self.tokens);
            };
            match c {
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'0'..=b'9' => self.number(start)?,
                b'\'' => self.string(start)?,
                _ => self.symbol(start)?,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn err(&self, msg: impl Into<String>, start: usize) -> Diagnostic {
        Diagnostic::new(
            Stage::Lex,
            msg,
            Span::new(start as u32, self.pos.max(start + 1) as u32),
        )
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'{') => {
                    let start = self.pos;
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'}') => break,
                            Some(_) => {}
                            None => return Err(self.err("unterminated comment", start)),
                        }
                    }
                }
                Some(b'(') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.bump();
                    self.bump();
                    loop {
                        match self.bump() {
                            Some(b'*') if self.peek() == Some(b')') => {
                                self.bump();
                                break;
                            }
                            Some(_) => {}
                            None => return Err(self.err("unterminated comment", start)),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn ident(&mut self, start: usize) {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]);
        let kind = TokenKind::keyword(&text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.push(kind, start);
    }

    fn number(&mut self, start: usize) -> Result<()> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        // A real literal needs `digit . digit`; `1..2` is int followed by DotDot.
        let is_real = self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9'));
        if is_real {
            self.bump(); // '.'
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.bump();
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                if !matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("missing exponent digits in real literal", start));
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]);
            let value: f64 = text
                .parse()
                .map_err(|_| self.err(format!("invalid real literal `{text}`"), start))?;
            self.push(TokenKind::RealLit(value), start);
        } else {
            let text = String::from_utf8_lossy(&self.src[start..self.pos]);
            let value: i64 = text
                .parse()
                .map_err(|_| self.err(format!("integer literal `{text}` out of range"), start))?;
            self.push(TokenKind::IntLit(value), start);
        }
        Ok(())
    }

    fn string(&mut self, start: usize) -> Result<()> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        value.push('\'');
                    } else {
                        break;
                    }
                }
                Some(b'\n') | None => {
                    return Err(self.err("unterminated string literal", start));
                }
                Some(c) => value.push(c as char),
            }
        }
        self.push(TokenKind::StrLit(value), start);
        Ok(())
    }

    fn symbol(&mut self, start: usize) -> Result<()> {
        use TokenKind::*;
        let c = self.bump().expect("caller checked peek");
        let kind = match c {
            b'+' => Plus,
            b'-' => Minus,
            b'*' => Star,
            b'/' => Slash,
            b'=' => Eq,
            b'(' => LParen,
            b')' => RParen,
            b'[' => LBracket,
            b']' => RBracket,
            b',' => Comma,
            b';' => Semicolon,
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    Le
                }
                Some(b'>') => {
                    self.bump();
                    Ne
                }
                _ => Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Ge
                } else {
                    Gt
                }
            }
            b':' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    Assign
                } else {
                    Colon
                }
            }
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    DotDot
                } else {
                    Dot
                }
            }
            other => {
                return Err(self.err(format!("unrecognized character `{}`", other as char), start));
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("tokenize")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_assignment() {
        assert_eq!(
            kinds("x := x + 1;"),
            vec![
                Ident("x".into()),
                Assign,
                Ident("x".into()),
                Plus,
                IntLit(1),
                Semicolon,
                Eof
            ]
        );
    }

    #[test]
    fn keywords_and_case() {
        assert_eq!(kinds("BEGIN End"), vec![Begin, End, Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a { comment } b (* more *) c"),
            vec![Ident("a".into()), Ident("b".into()), Ident("c".into()), Eof]
        );
    }

    #[test]
    fn range_vs_real() {
        assert_eq!(kinds("1..10"), vec![IntLit(1), DotDot, IntLit(10), Eof]);
        assert_eq!(kinds("1.5"), vec![RealLit(1.5), Eof]);
        assert_eq!(kinds("2.5e2"), vec![RealLit(250.0), Eof]);
    }

    #[test]
    fn relational_operators() {
        assert_eq!(kinds("< <= <> > >= ="), vec![Lt, Le, Ne, Gt, Ge, Eq, Eof]);
    }

    #[test]
    fn string_with_escaped_quote() {
        assert_eq!(kinds("'it''s'"), vec![StrLit("it's".into()), Eof]);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(tokenize("a { never closed").is_err());
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn unrecognized_character_is_an_error() {
        let err = tokenize("a # b").unwrap_err();
        assert!(err.message.contains('#'));
    }

    #[test]
    fn spans_cover_tokens() {
        let toks = tokenize("ab + cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn empty_input_yields_only_eof() {
        assert_eq!(kinds(""), vec![Eof]);
        assert_eq!(kinds("   {c} "), vec![Eof]);
    }
}
