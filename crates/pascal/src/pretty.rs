//! Source printing, including *slice* printing.
//!
//! [`print_program`] renders an AST back to compilable source (used to
//! display transformed programs, §6). [`print_slice`] renders the program
//! restricted to a set of statement ids — the paper's Figure 2(b) form of
//! a slice: unused declarations and procedures are dropped, structure is
//! preserved. Printed slices re-parse and re-run, which is how the test
//! suite checks slice correctness end to end.

use crate::ast::*;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders a whole program as Pascal source.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{parser::parse_program, pretty::print_program};
/// let p = parse_program("program t; var x: integer; begin x := 1 end.")?;
/// let src = print_program(&p);
/// // The printed form re-parses.
/// parse_program(&src)?;
/// # Ok(())
/// # }
/// ```
pub fn print_program(program: &Program) -> String {
    let keep_all = |_: StmtId| true;
    Printer::full(&keep_all).program(program)
}

/// Renders the program restricted to the statements in `keep`.
///
/// Structural statements (compounds, `if`/loops, labels) are printed when
/// any contained statement is kept. Procedures with no kept statements are
/// dropped, as are variable declarations not referenced by kept code.
pub fn print_slice(program: &Program, keep: &BTreeSet<StmtId>) -> String {
    let pred = |id: StmtId| keep.contains(&id);
    Printer::new(&pred).program(program)
}

struct Printer<'k> {
    keep: &'k dyn Fn(StmtId) -> bool,
    out: String,
    indent: usize,
    /// Whether unreferenced declarations and statement-free procedures
    /// are dropped (slice printing). Full-program printing keeps every
    /// declaration so printing is lossless up to empty statements.
    prune_decls: bool,
}

impl<'k> Printer<'k> {
    fn new(keep: &'k dyn Fn(StmtId) -> bool) -> Self {
        Printer {
            keep,
            out: String::new(),
            indent: 0,
            prune_decls: true,
        }
    }

    fn full(keep: &'k dyn Fn(StmtId) -> bool) -> Self {
        Printer {
            prune_decls: false,
            ..Printer::new(keep)
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn keeps_name(&self, used: &BTreeSet<String>, key: &str) -> bool {
        !self.prune_decls || used.contains(key)
    }

    fn kept(&self, s: &Stmt) -> bool {
        let mut any = false;
        s.walk(&mut |st| {
            if (self.keep)(st.id) && !matches!(st.kind, StmtKind::Empty) {
                any = true;
            }
        });
        any
    }

    fn program(mut self, p: &Program) -> String {
        // Names referenced by kept statements (for declaration pruning).
        let mut used = BTreeSet::new();
        collect_used_names(p, self.keep, &mut used);

        self.line(&format!("program {};", p.name));
        self.block(&p.block, &used, true);
        // Replace trailing "end" of the outer block with "end."
        while self.out.ends_with('\n') {
            self.out.pop();
        }
        self.out.push_str(".\n");
        self.out
    }

    fn block(&mut self, b: &Block, used: &BTreeSet<String>, _is_program: bool) {
        let used_labels: Vec<&Ident> = b
            .labels
            .iter()
            .filter(|l| self.keeps_name(used, &l.key()))
            .collect();
        if !used_labels.is_empty() {
            let names: Vec<String> = used_labels.iter().map(|l| l.name.clone()).collect();
            self.line(&format!("label {};", names.join(", ")));
        }
        let used_consts: Vec<&ConstDecl> = b
            .consts
            .iter()
            .filter(|c| self.keeps_name(used, &c.name.key()))
            .collect();
        if !used_consts.is_empty() {
            self.line("const");
            self.indent += 1;
            for c in used_consts {
                let v = match &c.value {
                    ConstValue::Int(n) => n.to_string(),
                    ConstValue::Real(x) => format!("{x:?}"),
                    ConstValue::Bool(b) => b.to_string(),
                    ConstValue::Str(s) => format!("'{}'", s.replace('\'', "''")),
                };
                self.line(&format!("{} = {};", c.name, v));
            }
            self.indent -= 1;
        }
        let used_types: Vec<&TypeDecl> = b
            .types
            .iter()
            .filter(|t| self.keeps_name(used, &t.name.key()))
            .collect();
        if !used_types.is_empty() {
            self.line("type");
            self.indent += 1;
            for t in used_types {
                self.line(&format!("{} = {};", t.name, type_str(&t.ty)));
            }
            self.indent -= 1;
        }
        let mut var_lines = Vec::new();
        for g in &b.vars {
            let names: Vec<String> = g
                .names
                .iter()
                .filter(|n| self.keeps_name(used, &n.key()))
                .map(|n| n.name.clone())
                .collect();
            if !names.is_empty() {
                var_lines.push(format!("{}: {};", names.join(", "), type_str(&g.ty)));
            }
        }
        if !var_lines.is_empty() {
            self.line("var");
            self.indent += 1;
            for l in var_lines {
                self.line(&l);
            }
            self.indent -= 1;
        }
        for proc in &b.procs {
            if !self.prune_decls || self.proc_is_kept(proc) {
                self.proc_decl(proc, used);
            }
        }
        self.line("begin");
        self.indent += 1;
        self.stmt_seq(&b.body);
        self.indent -= 1;
        self.line("end");
    }

    fn proc_is_kept(&self, p: &ProcDecl) -> bool {
        let mut any = false;
        p.block.walk_stmts(&mut |s| {
            if (self.keep)(s.id) && !matches!(s.kind, StmtKind::Empty) {
                any = true;
            }
        });
        if any {
            return true;
        }
        p.block.procs.iter().any(|q| self.proc_is_kept(q))
    }

    fn proc_decl(&mut self, p: &ProcDecl, used: &BTreeSet<String>) {
        let mut header = String::new();
        let kw = if p.is_function() {
            "function"
        } else {
            "procedure"
        };
        let _ = write!(header, "{kw} {}", p.name);
        if !p.params.is_empty() {
            header.push('(');
            for (i, g) in p.params.iter().enumerate() {
                if i > 0 {
                    header.push_str("; ");
                }
                let mode = match g.mode {
                    ParamMode::Value => "",
                    ParamMode::Var => "var ",
                    ParamMode::In => "in ",
                    ParamMode::Out => "out ",
                };
                let names: Vec<String> = g.names.iter().map(|n| n.name.clone()).collect();
                let _ = write!(header, "{mode}{}: {}", names.join(", "), type_str(&g.ty));
            }
            header.push(')');
        }
        if let Some(rt) = &p.return_type {
            let _ = write!(header, ": {}", type_str(rt));
        }
        header.push(';');
        self.line(&header);
        self.block(&p.block, used, false);
        // block() ends with "end"; append the declaration semicolon.
        while self.out.ends_with('\n') {
            self.out.pop();
        }
        self.out.push_str(";\n");
    }

    fn stmt_seq(&mut self, stmts: &[Stmt]) {
        let kept: Vec<&Stmt> = stmts.iter().filter(|s| self.kept(s)).collect();
        for (i, s) in kept.iter().enumerate() {
            let last = i + 1 == kept.len();
            self.stmt(s, !last);
        }
    }

    fn stmt(&mut self, s: &Stmt, semi: bool) {
        let term = if semi { ";" } else { "" };
        match &s.kind {
            StmtKind::Empty => {}
            StmtKind::Assign { lhs, rhs } => {
                self.line(&format!("{} := {}{term}", lvalue_str(lhs), expr_str(rhs)));
            }
            StmtKind::Call { name, args } => {
                if args.is_empty() {
                    self.line(&format!("{name}{term}"));
                } else {
                    let a: Vec<String> = args.iter().map(expr_str).collect();
                    self.line(&format!("{name}({}){term}", a.join(", ")));
                }
            }
            StmtKind::Compound(stmts) => {
                self.line("begin");
                self.indent += 1;
                self.stmt_seq(stmts);
                self.indent -= 1;
                self.line(&format!("end{term}"));
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.line(&format!("if {} then", expr_str(cond)));
                self.indent += 1;
                let then_kept = self.kept(then_branch);
                let else_kept = else_branch.as_ref().is_some_and(|e| self.kept(e));
                if then_kept {
                    self.stmt(then_branch, !else_kept && semi);
                } else if else_kept {
                    self.line("begin end");
                } else {
                    self.line(&format!("begin end{term}"));
                }
                self.indent -= 1;
                if else_kept {
                    self.line("else");
                    self.indent += 1;
                    self.stmt(else_branch.as_ref().expect("else_kept implies else"), semi);
                    self.indent -= 1;
                }
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            } => {
                self.line(&format!("case {} of", expr_str(scrutinee)));
                self.indent += 1;
                // Dropped arms stay as empty arms: removing a label would
                // reroute its values to the else branch and change the
                // slice's behaviour.
                for arm in arms {
                    let labels: Vec<String> = arm.labels.iter().map(const_str).collect();
                    self.line(&format!("{}:", labels.join(", ")));
                    self.indent += 1;
                    if self.kept(&arm.stmt) {
                        self.stmt(&arm.stmt, true);
                    } else {
                        self.line("begin end;");
                    }
                    self.indent -= 1;
                }
                if let Some(e) = else_arm {
                    self.line("else");
                    self.indent += 1;
                    if self.kept(e) {
                        self.stmt(e, true);
                    } else {
                        self.line("begin end;");
                    }
                    self.indent -= 1;
                }
                self.indent -= 1;
                self.line(&format!("end{term}"));
            }
            StmtKind::While { cond, body } => {
                self.line(&format!("while {} do", expr_str(cond)));
                self.indent += 1;
                if self.kept(body) {
                    self.stmt(body, semi);
                } else {
                    self.line(&format!("begin end{term}"));
                }
                self.indent -= 1;
            }
            StmtKind::Repeat { body, cond } => {
                self.line("repeat");
                self.indent += 1;
                self.stmt_seq(body);
                self.indent -= 1;
                self.line(&format!("until {}{term}", expr_str(cond)));
            }
            StmtKind::For {
                var,
                from,
                dir,
                to,
                body,
            } => {
                let d = match dir {
                    ForDir::To => "to",
                    ForDir::Downto => "downto",
                };
                self.line(&format!(
                    "for {var} := {} {d} {} do",
                    expr_str(from),
                    expr_str(to)
                ));
                self.indent += 1;
                if self.kept(body) {
                    self.stmt(body, semi);
                } else {
                    self.line(&format!("begin end{term}"));
                }
                self.indent -= 1;
            }
            StmtKind::Goto(l) => self.line(&format!("goto {l}{term}")),
            StmtKind::Labeled { label, stmt } => {
                self.line(&format!("{label}:"));
                if self.kept(stmt) {
                    self.stmt(stmt, semi);
                } else {
                    self.line(&format!("begin end{term}"));
                }
            }
            StmtKind::Read { args, newline } => {
                let kw = if *newline { "readln" } else { "read" };
                let a: Vec<String> = args.iter().map(lvalue_str).collect();
                self.line(&format!("{kw}({}){term}", a.join(", ")));
            }
            StmtKind::Write { args, newline } => {
                let kw = if *newline { "writeln" } else { "write" };
                if args.is_empty() {
                    self.line(&format!("{kw}{term}"));
                } else {
                    let a: Vec<String> = args.iter().map(expr_str).collect();
                    self.line(&format!("{kw}({}){term}", a.join(", ")));
                }
            }
        }
    }
}

/// Renders a constant value as a literal.
pub fn const_str(c: &ConstValue) -> String {
    match c {
        ConstValue::Int(n) => n.to_string(),
        ConstValue::Real(x) => format!("{x:?}"),
        ConstValue::Bool(b) => b.to_string(),
        ConstValue::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Renders a type expression.
pub fn type_str(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Named(n) => n.name.clone(),
        TypeExpr::Array { lo, hi, elem, .. } => {
            format!(
                "array[{}..{}] of {}",
                bound_str(lo),
                bound_str(hi),
                type_str(elem)
            )
        }
    }
}

fn bound_str(b: &ArrayBound) -> String {
    match b {
        ArrayBound::Lit(n) => n.to_string(),
        ArrayBound::Const(c) => c.name.clone(),
    }
}

/// Renders an lvalue.
pub fn lvalue_str(lv: &LValue) -> String {
    match &lv.index {
        None => lv.base.name.clone(),
        Some(i) => format!("{}[{}]", lv.base, expr_str(i)),
    }
}

/// Renders an expression with minimal parentheses (full parenthesization
/// of nested binary operations, which always re-parses correctly).
pub fn expr_str(e: &Expr) -> String {
    expr_prec(e, 0)
}

fn expr_prec(e: &Expr, parent: u8) -> String {
    match &e.kind {
        ExprKind::IntLit(n) => n.to_string(),
        ExprKind::RealLit(x) => {
            if x.fract() == 0.0 {
                format!("{x:.1}")
            } else {
                format!("{x}")
            }
        }
        ExprKind::BoolLit(b) => b.to_string(),
        ExprKind::StrLit(s) => format!("'{}'", s.replace('\'', "''")),
        ExprKind::Name(n) => n.name.clone(),
        ExprKind::Index { base, index } => format!("{base}[{}]", expr_prec(index, 0)),
        ExprKind::Call { name, args } => {
            let a: Vec<String> = args.iter().map(|x| expr_prec(x, 0)).collect();
            format!("{name}({})", a.join(", "))
        }
        ExprKind::Unary { op, operand } => {
            let inner = expr_prec(operand, 3);
            // A sign is only legal at the head of a simple expression
            // (where it binds the whole leading term), so `-x` must be
            // parenthesized in *any* operand position: `a + -x` does not
            // parse, and `-x * y` re-parses as `-(x * y)`. `not` is a
            // factor operator and only needs parens under another unary.
            match op {
                UnOp::Neg => {
                    if parent > 0 {
                        format!("(-{inner})")
                    } else {
                        format!("-{inner}")
                    }
                }
                UnOp::Not => {
                    if parent > 2 {
                        format!("(not {inner})")
                    } else {
                        format!("not {inner}")
                    }
                }
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let prec = match op {
                BinOp::Mul | BinOp::FDiv | BinOp::Div | BinOp::Mod | BinOp::And => 2,
                BinOp::Add | BinOp::Sub | BinOp::Or => 1,
                _ => 0, // relational
            };
            let l = expr_prec(lhs, prec);
            let r = expr_prec(rhs, prec + 1);
            let s = format!("{l} {op} {r}");
            if prec < parent {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

/// Collects the identifier names (normalized) appearing in kept statements
/// and in headers of procedures containing kept statements — the basis for
/// declaration pruning in slice printing.
fn collect_used_names(
    program: &Program,
    keep: &dyn Fn(StmtId) -> bool,
    used: &mut BTreeSet<String>,
) {
    fn names_in_expr(e: &Expr, used: &mut BTreeSet<String>) {
        match &e.kind {
            ExprKind::Name(n) => {
                used.insert(n.key());
            }
            ExprKind::Index { base, index } => {
                used.insert(base.key());
                names_in_expr(index, used);
            }
            ExprKind::Call { name, args } => {
                used.insert(name.key());
                for a in args {
                    names_in_expr(a, used);
                }
            }
            ExprKind::Unary { operand, .. } => names_in_expr(operand, used),
            ExprKind::Binary { lhs, rhs, .. } => {
                names_in_expr(lhs, used);
                names_in_expr(rhs, used);
            }
            _ => {}
        }
    }
    fn names_in_stmt(s: &Stmt, keep: &dyn Fn(StmtId) -> bool, used: &mut BTreeSet<String>) {
        // Structural statements contribute when any descendant is kept;
        // leaf statements contribute only when themselves kept.
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => {
                if keep(s.id) {
                    used.insert(lhs.base.key());
                    if let Some(i) = &lhs.index {
                        names_in_expr(i, used);
                    }
                    names_in_expr(rhs, used);
                }
            }
            StmtKind::Call { name, args } => {
                if keep(s.id) {
                    used.insert(name.key());
                    for a in args {
                        names_in_expr(a, used);
                    }
                }
            }
            StmtKind::Compound(stmts) => {
                for st in stmts {
                    names_in_stmt(st, keep, used);
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut any = false;
                s.walk(&mut |st| {
                    if keep(st.id) {
                        any = true;
                    }
                });
                if any {
                    names_in_expr(cond, used);
                }
                names_in_stmt(then_branch, keep, used);
                if let Some(e) = else_branch {
                    names_in_stmt(e, keep, used);
                }
            }
            StmtKind::Case {
                scrutinee,
                arms,
                else_arm,
            } => {
                let mut any = false;
                s.walk(&mut |st| {
                    if keep(st.id) {
                        any = true;
                    }
                });
                if any {
                    names_in_expr(scrutinee, used);
                }
                for a in arms {
                    names_in_stmt(&a.stmt, keep, used);
                }
                if let Some(e) = else_arm {
                    names_in_stmt(e, keep, used);
                }
            }
            StmtKind::While { cond, body } => {
                let mut any = false;
                s.walk(&mut |st| {
                    if keep(st.id) {
                        any = true;
                    }
                });
                if any {
                    names_in_expr(cond, used);
                }
                names_in_stmt(body, keep, used);
            }
            StmtKind::Repeat { body, cond } => {
                let mut any = false;
                s.walk(&mut |st| {
                    if keep(st.id) {
                        any = true;
                    }
                });
                if any {
                    names_in_expr(cond, used);
                }
                for st in body {
                    names_in_stmt(st, keep, used);
                }
            }
            StmtKind::For {
                var,
                from,
                to,
                body,
                ..
            } => {
                let mut any = false;
                s.walk(&mut |st| {
                    if keep(st.id) {
                        any = true;
                    }
                });
                if any {
                    used.insert(var.key());
                    names_in_expr(from, used);
                    names_in_expr(to, used);
                }
                names_in_stmt(body, keep, used);
            }
            StmtKind::Goto(l) => {
                if keep(s.id) {
                    used.insert(l.key());
                }
            }
            StmtKind::Labeled { label, stmt } => {
                let mut any = false;
                s.walk(&mut |st| {
                    if keep(st.id) {
                        any = true;
                    }
                });
                if any {
                    used.insert(label.key());
                }
                names_in_stmt(stmt, keep, used);
            }
            StmtKind::Read { args, .. } => {
                if keep(s.id) {
                    for lv in args {
                        used.insert(lv.base.key());
                        if let Some(i) = &lv.index {
                            names_in_expr(i, used);
                        }
                    }
                }
            }
            StmtKind::Write { args, .. } => {
                if keep(s.id) {
                    for a in args {
                        names_in_expr(a, used);
                    }
                }
            }
            StmtKind::Empty => {}
        }
    }
    fn type_names(t: &TypeExpr, used: &mut BTreeSet<String>) {
        match t {
            TypeExpr::Named(n) => {
                used.insert(n.key());
            }
            TypeExpr::Array { lo, hi, elem, .. } => {
                if let ArrayBound::Const(c) = lo {
                    used.insert(c.key());
                }
                if let ArrayBound::Const(c) = hi {
                    used.insert(c.key());
                }
                type_names(elem, used);
            }
        }
    }
    fn proc_names(p: &ProcDecl, keep: &dyn Fn(StmtId) -> bool, used: &mut BTreeSet<String>) {
        let mut any = false;
        p.block.walk_stmts(&mut |s| {
            if keep(s.id) {
                any = true;
            }
        });
        let nested_any = p.block.procs.iter().any(|q| {
            let mut a = false;
            q.block.walk_stmts(&mut |s| {
                if keep(s.id) {
                    a = true;
                }
            });
            a
        });
        if any || nested_any {
            // Parameter names and types count as used.
            for g in &p.params {
                for n in &g.names {
                    used.insert(n.key());
                }
                type_names(&g.ty, used);
            }
            if let Some(rt) = &p.return_type {
                type_names(rt, used);
            }
        }
        for s in &p.block.body {
            names_in_stmt(s, keep, used);
        }
        for q in &p.block.procs {
            proc_names(q, keep, used);
        }
    }

    for s in &program.block.body {
        names_in_stmt(s, keep, used);
    }
    for p in &program.block.procs {
        proc_names(p, keep, used);
    }
    // Types referenced by used variables' declarations.
    fn var_decl_types(block: &Block, used: &mut BTreeSet<String>) {
        let snapshot: Vec<String> = used.iter().cloned().collect();
        for g in &block.vars {
            if g.names.iter().any(|n| snapshot.contains(&n.key())) {
                type_names(&g.ty, used);
            }
        }
        for p in &block.procs {
            var_decl_types(&p.block, used);
        }
    }
    var_decl_types(&program.block, used);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::sema::compile;

    fn roundtrip(src: &str) {
        let p = parse_program(src).expect("parse");
        let printed = print_program(&p);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        let printed2 = print_program(&p2);
        assert_eq!(printed, printed2, "printing is not a fixpoint");
    }

    #[test]
    fn roundtrip_all_fixtures() {
        for (name, src) in crate::testprogs::ALL {
            let p = parse_program(src).expect(name);
            let printed = print_program(&p);
            parse_program(&printed)
                .unwrap_or_else(|e| panic!("{name} reparse failed: {e}\n{printed}"));
        }
    }

    #[test]
    fn roundtrip_operators_preserve_precedence() {
        let src = "program t; var a, b, c, x: integer; r: boolean;
                   begin x := (a + b) * c; x := a + b * c;
                         r := (a < b) and (b < c); x := -(a + b) end.";
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        let m1 = compile(src).unwrap();
        let m2 = compile(&printed).unwrap();
        // Semantically identical: same number of procs/vars.
        assert_eq!(m1.vars.len(), m2.vars.len());
        roundtrip(src);
        // Behavioural check.
        let src_run = "program t; var x: integer; r: boolean;
                       begin x := (1 + 2) * 3; r := (1 < 2) and (2 < 3); writeln(x, r) end.";
        let p = parse_program(src_run).unwrap();
        let printed = print_program(&p);
        let m_orig = compile(src_run).unwrap();
        let m_new = compile(&printed).unwrap();
        let o1 = crate::interp::Interpreter::new(&m_orig).run().unwrap();
        let o2 = crate::interp::Interpreter::new(&m_new).run().unwrap();
        assert_eq!(o1.output_text(), o2.output_text());
    }

    #[test]
    fn slice_printing_drops_unused_decls() {
        let p = parse_program(crate::testprogs::FIGURE2).unwrap();
        // Keep only `mul := 0`.
        let mut keep = BTreeSet::new();
        p.block.walk_stmts(&mut |s| {
            if let StmtKind::Assign { lhs, .. } = &s.kind {
                if lhs.base.name == "mul"
                    && matches!(
                        &s.kind,
                        StmtKind::Assign { rhs, .. } if matches!(rhs.kind, ExprKind::IntLit(0))
                    )
                {
                    keep.insert(s.id);
                }
            }
        });
        assert_eq!(keep.len(), 1);
        let printed = print_slice(&p, &keep);
        assert!(printed.contains("mul"));
        assert!(!printed.contains("sum"), "{printed}");
        assert!(!printed.contains("read"), "{printed}");
        // The slice re-parses and runs.
        let m = compile(&printed).unwrap();
        crate::interp::Interpreter::new(&m).run().unwrap();
    }

    #[test]
    fn slice_printing_keeps_if_structure() {
        let p = parse_program(crate::testprogs::FIGURE2).unwrap();
        // Keep mul-assignments and the read(x,y); the if-branch assigning
        // mul is inside the else.
        let mut keep = BTreeSet::new();
        p.block.walk_stmts(&mut |s| match &s.kind {
            StmtKind::Assign { lhs, .. } if lhs.base.name == "mul" => {
                keep.insert(s.id);
            }
            StmtKind::Read { args, .. } if args.iter().any(|a| a.base.name == "x") => {
                keep.insert(s.id);
            }
            _ => {}
        });
        let printed = print_slice(&p, &keep);
        assert!(printed.contains("if x <= 1 then"), "{printed}");
        assert!(printed.contains("mul := x * y"), "{printed}");
        assert!(!printed.contains("sum := x + y"), "{printed}");
        let m = compile(&printed).unwrap();
        let mut i = crate::interp::Interpreter::new(&m);
        i.set_input([crate::value::Value::Int(3), crate::value::Value::Int(5)]);
        let o = i.run().unwrap();
        assert_eq!(o.global("mul"), Some(&crate::value::Value::Int(15)));
    }

    #[test]
    fn slice_printing_drops_whole_procedures() {
        let p = parse_program(crate::testprogs::SQRTEST).unwrap();
        // Keep only main-body statements.
        let mut keep = BTreeSet::new();
        for s in &p.block.body {
            s.walk(&mut |st| {
                keep.insert(st.id);
            });
        }
        let printed = print_slice(&p, &keep);
        assert!(printed.contains("sqrtest"), "{printed}");
        // decrement has no kept statements → dropped.
        assert!(!printed.contains("decrement"), "{printed}");
    }

    #[test]
    fn in_out_modes_print_and_reparse() {
        let src = "program t; var a, b, c: integer;
                   procedure p(var y: integer; in x: integer; out z: integer);
                   begin y := x + 1; z := y - x end;
                   begin p(a, b, c) end.";
        roundtrip(src);
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("in x: integer"), "{printed}");
        assert!(printed.contains("out z: integer"), "{printed}");
    }

    #[test]
    fn labels_and_gotos_print() {
        roundtrip(crate::testprogs::SECTION6_LOOP_GOTO);
        let p = parse_program(crate::testprogs::SECTION6_LOOP_GOTO).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("label 9;"), "{printed}");
        assert!(printed.contains("goto 9"), "{printed}");
        assert!(printed.contains("9:"), "{printed}");
    }

    #[test]
    fn printed_program_behaves_identically() {
        for (name, src) in crate::testprogs::ALL {
            if *name == "figure2" {
                continue; // needs input; covered elsewhere
            }
            let p = parse_program(src).unwrap();
            let printed = print_program(&p);
            let m1 = compile(src).unwrap();
            let m2 = compile(&printed).unwrap_or_else(|e| panic!("{name}: {e}\n{printed}"));
            let o1 = crate::interp::Interpreter::new(&m1).run().unwrap();
            let o2 = crate::interp::Interpreter::new(&m2).run().unwrap();
            assert_eq!(o1.output_text(), o2.output_text(), "{name}");
        }
    }
}
