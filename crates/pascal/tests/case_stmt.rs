//! The `case` statement across every layer: parsing, type checking, CFG
//! lowering, execution, pretty printing, and its interaction with the
//! other subsystems (slicing and transformation are covered by the
//! cross-crate tests in the workspace root).

use gadt_pascal::interp::Interpreter;
use gadt_pascal::pretty::print_program;
use gadt_pascal::sema::compile;
use gadt_pascal::value::Value;

fn run(src: &str, input: Vec<i64>) -> gadt_pascal::interp::Outcome {
    let m = compile(src).unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
    let mut i = Interpreter::new(&m);
    i.set_input(input.into_iter().map(Value::Int));
    i.run().unwrap_or_else(|e| panic!("run: {e}"))
}

#[test]
fn basic_dispatch() {
    let src = "program t; var x, r: integer;
         begin
           read(x);
           case x of
             1: r := 10;
             2, 3: r := 20;
             4: r := 40
           else r := 0 - 1
           end;
           writeln(r)
         end.";
    assert_eq!(run(src, vec![1]).output_text(), "10\n");
    assert_eq!(run(src, vec![2]).output_text(), "20\n");
    assert_eq!(run(src, vec![3]).output_text(), "20\n");
    assert_eq!(run(src, vec![4]).output_text(), "40\n");
    assert_eq!(run(src, vec![99]).output_text(), "-1\n");
}

#[test]
fn no_else_falls_through() {
    let src = "program t; var x, r: integer;
         begin r := 7; read(x);
           case x of 1: r := 1 end;
           writeln(r)
         end.";
    assert_eq!(run(src, vec![5]).output_text(), "7\n");
    assert_eq!(run(src, vec![1]).output_text(), "1\n");
}

#[test]
fn char_selector() {
    let src = "program t; var c: char; r: integer;
         begin
           c := 'b';
           case c of
             'a': r := 1;
             'b': r := 2
           else r := 9
           end;
           writeln(r)
         end.";
    assert_eq!(run(src, vec![]).output_text(), "2\n");
}

#[test]
fn boolean_selector() {
    let src = "program t; var b: boolean; r: integer;
         begin
           b := 3 > 2;
           case b of
             true: r := 1;
             false: r := 0
           end;
           writeln(r)
         end.";
    assert_eq!(run(src, vec![]).output_text(), "1\n");
}

#[test]
fn scrutinee_evaluated_once() {
    // The selector contains a function call with a side effect on a
    // counter; `case` must evaluate it exactly once.
    let src = "program t; var calls, r: integer;
         function pick: integer;
         begin calls := calls + 1; pick := 2 end;
         begin
           calls := 0;
           case pick of
             1: r := 10;
             2: r := 20;
             3: r := 30
           end;
           writeln(r, ' ', calls)
         end.";
    assert_eq!(run(src, vec![]).output_text(), "20 1\n");
}

#[test]
fn nested_case_in_loop() {
    let src = "program t; var i, evens, odds, r: integer;
         begin
           evens := 0; odds := 0;
           for i := 1 to 6 do
             case i mod 2 of
               0: evens := evens + 1;
               1: odds := odds + 1
             end;
           writeln(evens, ' ', odds);
           r := 0;
           case evens of
             3: case odds of
                  3: r := 33
                end
           end;
           writeln(r)
         end.";
    assert_eq!(run(src, vec![]).output_text(), "3 3\n33\n");
}

#[test]
fn duplicate_label_rejected() {
    let e = compile(
        "program t; var x: integer;
         begin case x of 1: x := 1; 1: x := 2 end end.",
    )
    .unwrap_err();
    assert!(e.message.contains("duplicate case label"), "{}", e.message);
}

#[test]
fn mismatched_label_type_rejected() {
    let e = compile(
        "program t; var x: integer;
         begin case x of 'a': x := 1 end end.",
    )
    .unwrap_err();
    assert!(e.message.contains("does not match"), "{}", e.message);
}

#[test]
fn non_ordinal_selector_rejected() {
    let e = compile(
        "program t; var x: real;
         begin case x of 1: x := 1.0 end end.",
    )
    .unwrap_err();
    assert!(e.message.contains("ordinal"), "{}", e.message);
}

#[test]
fn pretty_print_round_trips() {
    let src = "program t; var x, r: integer;
         begin
           read(x);
           case x of
             1: r := 10;
             2, 3: begin r := 20; r := r + 1 end
           else r := 0
           end;
           writeln(r)
         end.";
    let m = compile(src).unwrap();
    let printed = print_program(&m.program);
    assert!(printed.contains("case x of"), "{printed}");
    assert!(printed.contains("2, 3:"), "{printed}");
    let m2 = compile(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
    for input in [1i64, 2, 3, 8] {
        let mut i1 = Interpreter::new(&m);
        i1.set_input([Value::Int(input)]);
        let mut i2 = Interpreter::new(&m2);
        i2.set_input([Value::Int(input)]);
        assert_eq!(
            i1.run().unwrap().output_text(),
            i2.run().unwrap().output_text(),
            "input {input}"
        );
    }
}

#[test]
fn case_with_goto_out_of_arm() {
    let src = "program t; label 9; var x, r: integer;
         begin
           read(x);
           r := 0;
           case x of
             1: begin r := 1; goto 9 end;
             2: r := 2
           end;
           r := r + 100;
           9: writeln(r)
         end.";
    assert_eq!(run(src, vec![1]).output_text(), "1\n");
    assert_eq!(run(src, vec![2]).output_text(), "102\n");
}

#[test]
fn case_inside_procedure_with_var_param() {
    let src = "program t; var r: integer;
         procedure classify(n: integer; var kind: integer);
         begin
           case n mod 3 of
             0: kind := 100;
             1: kind := 200;
             2: kind := 300
           end
         end;
         begin classify(7, r); writeln(r) end.";
    assert_eq!(run(src, vec![]).output_text(), "200\n");
}
