//! Property tests: the interpreter's expression evaluation agrees with a
//! direct Rust model on randomly generated expression trees, and
//! structured control flow computes what a Rust re-implementation
//! computes.
//!
//! Gated behind `--cfg gadt_proptest` (a cfg rather than a cargo
//! feature, so `--all-features` stays green offline): the build
//! environment has no registry access, so the `proptest` dev-dependency
//! is not declared. To run this suite, restore `proptest = "1"` under
//! `[dev-dependencies]` in `crates/pascal/Cargo.toml` and build with
//! `RUSTFLAGS="--cfg gadt_proptest" cargo test -p gadt-pascal`.
#![cfg(gadt_proptest)]

use gadt_pascal::interp::Interpreter;
use gadt_pascal::sema::compile;
use gadt_pascal::value::Value;
use proptest::prelude::*;

/// A model expression over two integer variables `x` and `y`.
#[derive(Debug, Clone)]
enum E {
    X,
    Y,
    Lit(i64),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn to_pascal(&self) -> String {
        match self {
            E::X => "x".into(),
            E::Y => "y".into(),
            E::Lit(n) => {
                if *n < 0 {
                    format!("(0 - {})", -n)
                } else {
                    n.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", a.to_pascal(), b.to_pascal()),
            E::Sub(a, b) => format!("({} - {})", a.to_pascal(), b.to_pascal()),
            E::Mul(a, b) => format!("({} * {})", a.to_pascal(), b.to_pascal()),
            E::Div(a, b) => format!("({} div {})", a.to_pascal(), b.to_pascal()),
            E::Mod(a, b) => format!("({} mod {})", a.to_pascal(), b.to_pascal()),
            E::Neg(a) => format!("(-{})", a.to_pascal()),
        }
    }

    /// Evaluates with Pascal semantics; `None` models a runtime error
    /// (division by zero or overflow).
    fn eval(&self, x: i64, y: i64) -> Option<i64> {
        Some(match self {
            E::X => x,
            E::Y => y,
            E::Lit(n) => *n,
            E::Add(a, b) => a.eval(x, y)?.checked_add(b.eval(x, y)?)?,
            E::Sub(a, b) => a.eval(x, y)?.checked_sub(b.eval(x, y)?)?,
            E::Mul(a, b) => a.eval(x, y)?.checked_mul(b.eval(x, y)?)?,
            E::Div(a, b) => {
                let d = b.eval(x, y)?;
                if d == 0 {
                    return None;
                }
                a.eval(x, y)?.checked_div(d)?
            }
            E::Mod(a, b) => {
                let d = b.eval(x, y)?;
                if d == 0 {
                    return None;
                }
                a.eval(x, y)?.checked_rem(d)?
            }
            E::Neg(a) => a.eval(x, y)?.checked_neg()?,
        })
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::X), Just(E::Y), (-50i64..50).prop_map(E::Lit),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mod(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expression_evaluation_matches_rust_model(
        e in arb_expr(),
        x in -100i64..100,
        y in -100i64..100,
    ) {
        let src = format!(
            "program t; var x, y, r: integer;
             begin read(x); read(y); r := {}; writeln(r) end.",
            e.to_pascal()
        );
        let m = compile(&src).expect("generated expression compiles");
        let mut i = Interpreter::new(&m);
        i.set_input([Value::Int(x), Value::Int(y)]);
        let got = i.run();
        match (e.eval(x, y), got) {
            (Some(expected), Ok(out)) => {
                prop_assert_eq!(
                    out.global("r"),
                    Some(&Value::Int(expected)),
                    "expr {} on ({}, {})",
                    e.to_pascal(), x, y
                );
            }
            (None, Err(err)) => {
                prop_assert!(
                    err.message.contains("division by zero")
                        || err.message.contains("overflow"),
                    "unexpected error: {}", err.message
                );
            }
            (Some(expected), Err(err)) => {
                return Err(TestCaseError::fail(format!(
                    "model says {expected}, interpreter errored: {}", err.message
                )));
            }
            (None, Ok(out)) => {
                return Err(TestCaseError::fail(format!(
                    "model says error, interpreter returned {:?}", out.global("r")
                )));
            }
        }
    }

    #[test]
    fn while_loop_summation_matches_model(n in 0i64..60, step in 1i64..7) {
        let src = format!(
            "program t; var i, s: integer;
             begin i := 0; s := 0;
               while i < {n} do begin s := s + i; i := i + {step} end;
               writeln(s)
             end."
        );
        let m = compile(&src).unwrap();
        let out = Interpreter::new(&m).run().unwrap();
        let mut s = 0i64;
        let mut i = 0i64;
        while i < n {
            s += i;
            i += step;
        }
        prop_assert_eq!(out.global("s"), Some(&Value::Int(s)));
    }

    #[test]
    fn for_loop_bounds_match_model(lo in -10i64..10, hi in -10i64..10) {
        let src = format!(
            "program t; var i, c: integer;
             begin c := 0; for i := {lo} to {hi} do c := c + 1;
                   for i := {hi} downto {lo} do c := c + 1;
                   writeln(c) end."
        );
        let m = compile(&src).unwrap();
        let out = Interpreter::new(&m).run().unwrap();
        let ups = (hi - lo + 1).max(0);
        prop_assert_eq!(out.global("c"), Some(&Value::Int(2 * ups)));
    }

    #[test]
    fn recursion_matches_iteration(n in 0i64..15) {
        let src = format!(
            "program t; var a, b: integer;
             function factr(n: integer): integer;
             begin if n <= 1 then factr := 1 else factr := n * factr(n - 1) end;
             procedure facti(n: integer; var r: integer);
             var i: integer;
             begin r := 1; for i := 2 to n do r := r * i end;
             begin a := factr({n}); facti({n}, b); writeln(a, ' ', b) end."
        );
        let m = compile(&src).unwrap();
        let out = Interpreter::new(&m).run().unwrap();
        prop_assert_eq!(out.global("a"), out.global("b"));
    }

    #[test]
    fn array_reverse_round_trips(xs in proptest::collection::vec(-100i64..100, 1..20)) {
        let n = xs.len();
        let mut setup = String::new();
        for (i, v) in xs.iter().enumerate() {
            let lit = if *v < 0 {
                format!("0 - {}", -v)
            } else {
                v.to_string()
            };
            setup.push_str(&format!("a[{}] := {};\n", i + 1, lit));
        }
        let src = format!(
            "program t;
             var a: array[1..{n}] of integer; i, tmp, ok: integer;
             begin
               {setup}
               for i := 1 to {n} div 2 do begin
                 tmp := a[i]; a[i] := a[{n} + 1 - i]; a[{n} + 1 - i] := tmp
               end;
               for i := 1 to {n} div 2 do begin
                 tmp := a[i]; a[i] := a[{n} + 1 - i]; a[{n} + 1 - i] := tmp
               end;
               ok := a[1];
               writeln(ok)
             end."
        );
        let m = compile(&src).unwrap();
        let out = Interpreter::new(&m).run().unwrap();
        prop_assert_eq!(out.global("ok"), Some(&Value::Int(xs[0])));
    }
}
