//! Parse → pretty-print → re-parse round trips over every bundled test
//! program: the printed form must reconstruct the same AST modulo spans
//! and statement ids. This is the structural guarantee the mutation
//! engine relies on — a mutant is materialized by printing its mutated
//! AST and re-parsing, so printing must lose nothing.

use gadt_pascal::ast_mut::normalize;
use gadt_pascal::parser::parse_program;
use gadt_pascal::pretty::print_program;
use gadt_pascal::testprogs;

#[test]
fn all_testprogs_round_trip_modulo_spans() {
    for (name, src) in testprogs::ALL {
        let mut first = parse_program(src).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let printed = print_program(&first);
        let mut second = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed form does not parse: {e}\n{printed}"));
        normalize(&mut first);
        normalize(&mut second);
        assert_eq!(first, second, "{name}: AST changed across print→parse");
    }
}

#[test]
fn printing_is_a_fixpoint_on_all_testprogs() {
    for (name, src) in testprogs::ALL {
        let ast = parse_program(src).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let once = print_program(&ast);
        let twice = print_program(&parse_program(&once).unwrap());
        assert_eq!(once, twice, "{name}: printing not a fixpoint");
    }
}
