//! Integration tests: classic algorithms written in the Pascal subset —
//! the substrate must be strong enough to host realistic programs, not
//! just the paper's examples.

use gadt_pascal::interp::Interpreter;
use gadt_pascal::sema::compile;
use gadt_pascal::value::Value;

fn run(src: &str, input: Vec<i64>) -> gadt_pascal::interp::Outcome {
    let m = compile(src).unwrap_or_else(|e| panic!("compile: {e}\n{src}"));
    let mut i = Interpreter::new(&m);
    i.set_input(input.into_iter().map(Value::Int));
    i.run().unwrap_or_else(|e| panic!("run: {e}\n{src}"))
}

#[test]
fn euclid_gcd() {
    let src = "program gcd;
         var a, b: integer;
         function gcd(a, b: integer): integer;
         begin
           if b = 0 then gcd := a else gcd := gcd(b, a mod b)
         end;
         begin read(a); read(b); writeln(gcd(a, b)) end.";
    assert_eq!(run(src, vec![48, 36]).output_text(), "12\n");
    assert_eq!(run(src, vec![17, 5]).output_text(), "1\n");
    assert_eq!(run(src, vec![100, 0]).output_text(), "100\n");
}

#[test]
fn iterative_fibonacci() {
    let src = "program fib;
         var n, i, a, b, t: integer;
         begin
           read(n);
           a := 0; b := 1;
           for i := 1 to n do begin t := a + b; a := b; b := t end;
           writeln(a)
         end.";
    assert_eq!(run(src, vec![10]).output_text(), "55\n");
    assert_eq!(run(src, vec![1]).output_text(), "1\n");
    assert_eq!(run(src, vec![0]).output_text(), "0\n");
}

#[test]
fn sieve_of_eratosthenes() {
    let src = "program sieve;
         const n = 50;
         var isprime: array[2..n] of boolean;
             i, j, count: integer;
         begin
           for i := 2 to n do isprime[i] := true;
           i := 2;
           while i * i <= n do begin
             if isprime[i] then begin
               j := i * i;
               while j <= n do begin
                 isprime[j] := false;
                 j := j + i
               end
             end;
             i := i + 1
           end;
           count := 0;
           for i := 2 to n do
             if isprime[i] then count := count + 1;
           writeln(count)
         end.";
    // 15 primes ≤ 50.
    assert_eq!(run(src, vec![]).output_text(), "15\n");
}

#[test]
fn bubble_sort_with_nested_loops() {
    let src = "program sortit;
         const n = 8;
         var a: array[1..n] of integer; i, j, tmp: integer; sorted: boolean;
         begin
           for i := 1 to n do read(a[i]);
           for i := 1 to n - 1 do
             for j := 1 to n - i do
               if a[j] > a[j + 1] then begin
                 tmp := a[j]; a[j] := a[j + 1]; a[j + 1] := tmp
               end;
           sorted := true;
           for i := 1 to n - 1 do
             if a[i] > a[i + 1] then sorted := false;
           for i := 1 to n do write(a[i], ' ');
           writeln;
           writeln(sorted)
         end.";
    let out = run(src, vec![5, 2, 9, 1, 7, 3, 8, 4]);
    assert_eq!(out.output_text(), "1 2 3 4 5 7 8 9 \ntrue\n");
}

#[test]
fn binary_search_via_while() {
    let src = "program bsearch;
         const n = 10;
         var a: array[1..n] of integer; i, lo, hi, mid, key, found: integer;
         begin
           for i := 1 to n do a[i] := i * 3;
           read(key);
           lo := 1; hi := n; found := 0 - 1;
           while lo <= hi do begin
             mid := (lo + hi) div 2;
             if a[mid] = key then begin found := mid; lo := hi + 1 end
             else if a[mid] < key then lo := mid + 1
             else hi := mid - 1
           end;
           writeln(found)
         end.";
    assert_eq!(run(src, vec![12]).output_text(), "4\n");
    assert_eq!(run(src, vec![30]).output_text(), "10\n");
    assert_eq!(run(src, vec![13]).output_text(), "-1\n");
}

#[test]
fn ackermann_small_inputs() {
    let src = "program ack;
         var m, n: integer;
         function a(m, n: integer): integer;
         begin
           if m = 0 then a := n + 1
           else if n = 0 then a := a(m - 1, 1)
           else a := a(m - 1, a(m, n - 1))
         end;
         begin read(m); read(n); writeln(a(m, n)) end.";
    assert_eq!(run(src, vec![2, 3]).output_text(), "9\n");
    assert_eq!(run(src, vec![3, 3]).output_text(), "61\n");
}

#[test]
fn collatz_steps_with_repeat() {
    let src = "program collatz;
         var n, steps: integer;
         begin
           read(n);
           steps := 0;
           repeat
             if odd(n) then n := 3 * n + 1 else n := n div 2;
             steps := steps + 1
           until n = 1;
           writeln(steps)
         end.";
    assert_eq!(run(src, vec![6]).output_text(), "8\n");
    assert_eq!(run(src, vec![27]).output_text(), "111\n");
}

#[test]
fn matrix_flattened_multiplication() {
    // 2×2 matrices flattened into arrays: shows index arithmetic.
    let src = "program matmul;
         var a, b, c: array[1..4] of integer; i, j, k: integer;
         begin
           for i := 1 to 4 do read(a[i]);
           for i := 1 to 4 do read(b[i]);
           for i := 0 to 1 do
             for j := 1 to 2 do begin
               c[i * 2 + j] := 0;
               for k := 1 to 2 do
                 c[i * 2 + j] := c[i * 2 + j] + a[i * 2 + k] * b[(k - 1) * 2 + j]
             end;
           for i := 1 to 4 do write(c[i], ' ');
           writeln
         end.";
    // [1 2; 3 4] × [5 6; 7 8] = [19 22; 43 50]
    let out = run(src, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    assert_eq!(out.output_text(), "19 22 43 50 \n");
}

#[test]
fn string_and_char_output() {
    let src = "program hello;
         var c: char;
         begin
           c := 'A';
           writeln('hello, ', c, ' world ', 1 + 2)
         end.";
    assert_eq!(run(src, vec![]).output_text(), "hello, A world 3\n");
}

#[test]
fn deep_recursion_with_var_accumulator() {
    let src = "program acc;
         var total: integer;
         procedure count(n: integer; var acc: integer);
         begin
           if n > 0 then begin
             acc := acc + n;
             count(n - 1, acc)
           end
         end;
         begin total := 0; count(100, total); writeln(total) end.";
    assert_eq!(run(src, vec![]).output_text(), "5050\n");
}
