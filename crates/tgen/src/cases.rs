//! Executable test cases, the test runner, and the test-report database.
//!
//! §2: "By extending the test specification with declarations and
//! executable statements the system can generate executable test cases
//! from test frames. During the execution of the test cases, test reports
//! are produced in a database. These test reports can easily be accessed
//! by using a coded form of the test frames."
//!
//! Here the "declarations and executable statements" become a Rust
//! *instantiator* (frame → concrete input values) and the unit under test
//! runs through [`gadt_pascal::interp::Interpreter::run_proc`]. Verdicts
//! come from a caller-supplied oracle predicate (the tester's expected
//! results; §5.3.2 notes "the reliability of testing is largely dependent
//! on the tester").

use crate::frames::{Frame, GeneratedFrames};
use gadt_pascal::cfg::lower;
use gadt_pascal::error::Result;
use gadt_pascal::interp::{Limits, ProcRun};
use gadt_pascal::sema::{Module, ProcId};
use gadt_pascal::value::Value;
use gadt_vm::{CallSemantics, PreparedEngine};
use std::collections::BTreeMap;

pub use gadt_vm::Engine;

/// One executable test case: a frame plus concrete input values.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Index of the frame in its [`GeneratedFrames`].
    pub frame_index: usize,
    /// The frame's coded form (the database key).
    pub code: String,
    /// Concrete argument values for the unit under test.
    pub inputs: Vec<Value>,
}

/// Builds executable test cases from frames via an instantiator. Frames
/// the instantiator cannot realize (returns `None`) are skipped — e.g.
/// `more`-sized arrays when the unit's array type holds only two
/// elements.
pub fn instantiate_cases(
    frames: &GeneratedFrames,
    mut instantiate: impl FnMut(&Frame) -> Option<Vec<Value>>,
) -> Vec<TestCase> {
    frames
        .frames
        .iter()
        .enumerate()
        .filter_map(|(i, f)| {
            instantiate(f).map(|inputs| TestCase {
                frame_index: i,
                code: f.code(),
                inputs,
            })
        })
        .collect()
}

/// One test report.
#[derive(Debug, Clone, PartialEq)]
pub struct TestReport {
    /// The frame's coded form.
    pub code: String,
    /// The inputs used.
    pub inputs: Vec<Value>,
    /// Output values (reference params in order, then the function
    /// result if any).
    pub outputs: Vec<Value>,
    /// The verdict.
    pub passed: bool,
}

/// The test-report database for one unit, keyed by frame code.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TestDb {
    /// The unit the reports are about.
    pub unit: String,
    reports: BTreeMap<String, Vec<TestReport>>,
}

impl TestDb {
    /// Creates an empty database for a unit.
    pub fn new(unit: impl Into<String>) -> Self {
        TestDb {
            unit: unit.into(),
            reports: BTreeMap::new(),
        }
    }

    /// Adds a report, deduplicating on `(code, inputs)`: re-running the
    /// same case (e.g. repeated [`run_cases_batch`] calls over one
    /// database) replaces the old report instead of accumulating
    /// duplicates, and the **latest** verdict wins.
    pub fn add(&mut self, report: TestReport) {
        let slot = self.reports.entry(report.code.clone()).or_default();
        match slot.iter_mut().find(|r| r.inputs == report.inputs) {
            Some(existing) => *existing = report,
            None => slot.push(report),
        }
    }

    /// All reports for a frame code.
    pub fn reports_for(&self, code: &str) -> &[TestReport] {
        self.reports.get(code).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The frame-level verdict used during debugging (§5.3.2): `None` if
    /// the frame was never tested, `Some(true)` if every report passed,
    /// `Some(false)` if any failed.
    pub fn frame_verdict(&self, code: &str) -> Option<bool> {
        let rs = self.reports.get(code)?;
        if rs.is_empty() {
            return None;
        }
        Some(rs.iter().all(|r| r.passed))
    }

    /// Total number of reports.
    pub fn len(&self) -> usize {
        self.reports.values().map(Vec::len).sum()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(code, reports)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[TestReport])> {
        self.reports.iter().map(|(c, r)| (c.as_str(), r.as_slice()))
    }

    /// Persists every report into a [`gadt_store::KnowledgeStore`].
    /// Appends are idempotent, so persisting the same database twice
    /// leaves the store's bytes unchanged. Returns how many reports were
    /// actually new knowledge.
    ///
    /// # Errors
    /// Store I/O errors.
    pub fn persist(&self, store: &mut gadt_store::KnowledgeStore) -> std::io::Result<usize> {
        let mut appended = 0;
        for (_, reports) in self.iter() {
            for r in reports {
                if store.append_report(stored_report(&self.unit, r))? {
                    appended += 1;
                }
            }
        }
        Ok(appended)
    }

    /// Rebuilds a database for `unit` from everything a store holds —
    /// the cross-session path: a later debugging session loads the
    /// reports a previous session's test phase persisted.
    pub fn load_from(store: &gadt_store::KnowledgeStore, unit: &str) -> TestDb {
        let mut db = TestDb::new(unit.to_ascii_lowercase());
        for r in store.unit_reports(unit) {
            db.add(TestReport {
                code: r.code.clone(),
                inputs: r.inputs.clone(),
                outputs: r.outputs.clone(),
                passed: r.passed,
            });
        }
        db
    }
}

fn stored_report(unit: &str, r: &TestReport) -> gadt_store::StoredReport {
    gadt_store::StoredReport {
        unit: unit.to_ascii_lowercase(),
        code: r.code.clone(),
        inputs: r.inputs.clone(),
        outputs: r.outputs.clone(),
        passed: r.passed,
    }
}

/// Runs test cases against one top-level procedure of a module.
///
/// The oracle receives the inputs and the [`ProcRun`] and decides the
/// verdict.
///
/// # Errors
/// Propagates interpreter errors (a crashing unit is a test failure the
/// caller may prefer to record; this runner surfaces the error instead so
/// the tester notices).
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use gadt_pascal::{sema::compile, testprogs, value::Value};
/// use gadt_tgen::{spec, frames, cases};
/// let m = compile(testprogs::SQRTEST)?;
/// let s = spec::parse_spec(spec::ARRSUM_SPEC)?;
/// let g = frames::generate_frames(&s, Default::default());
/// let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
/// let db = cases::run_cases(&m, "arrsum", &tc, &|ins, run| {
///     cases::arrsum_oracle(ins, run)
/// })?;
/// assert_eq!(db.frame_verdict("two.positive.small"), Some(true));
/// # Ok(())
/// # }
/// ```
pub fn run_cases(
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &dyn Fn(&[Value], &ProcRun) -> bool,
) -> Result<TestDb> {
    run_cases_on(Engine::default(), module, unit, cases, oracle)
}

/// [`run_cases`] on an explicit execution [`Engine`]. The unit's CFG is
/// lowered (and, for [`Engine::Vm`], compiled to bytecode) **once** for
/// the whole batch; both engines produce identical [`TestDb`] contents
/// (`tests/vm_conformance.rs` pins this down).
///
/// # Errors
/// Same as [`run_cases`].
pub fn run_cases_on(
    engine: Engine,
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &dyn Fn(&[Value], &ProcRun) -> bool,
) -> Result<TestDb> {
    let proc = resolve_unit(module, unit)?;
    let cfg = lower(module);
    let prepared = PreparedEngine::new(module, &cfg, engine);
    let mut db = TestDb::new(unit);
    for case in cases {
        let run = run_unit(&prepared, proc, case.inputs.clone())?;
        let passed = oracle(&case.inputs, &run);
        let mut outputs: Vec<Value> = run.outs.iter().map(|(_, v)| v.clone()).collect();
        if let Some(r) = &run.result {
            outputs.push(r.clone());
        }
        db.add(TestReport {
            code: case.code.clone(),
            inputs: case.inputs.clone(),
            outputs,
            passed,
        });
    }
    Ok(db)
}

/// Runs test cases in parallel on `threads` workers (`0` = all cores),
/// fanning each case out to its own interpreter run and merging the
/// reports back into the [`TestDb`] **in case order** — the database is
/// bit-for-bit identical to the one [`run_cases`] builds, whatever the
/// thread count (`tests/parallel_determinism.rs` pins this down).
///
/// The oracle must be `Sync`: it is shared by all workers. Stateless
/// verdict predicates (like [`arrsum_oracle`]) qualify as-is.
///
/// # Errors
/// Propagates the error of the lowest-indexed failing case — the same
/// error the sequential runner would surface first.
pub fn run_cases_batch(
    threads: usize,
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &(dyn Fn(&[Value], &ProcRun) -> bool + Sync),
) -> Result<TestDb> {
    run_cases_batch_observed(
        threads,
        module,
        unit,
        cases,
        oracle,
        &mut gadt_obs::Recorder::disabled(),
    )
}

/// [`run_cases_batch`] on an explicit execution [`Engine`]. Bytecode is
/// compiled once and shared (by reference) across all workers, so the
/// per-case cost on [`Engine::Vm`] is just frame setup plus execution.
///
/// # Errors
/// Same as [`run_cases_batch`].
pub fn run_cases_batch_on(
    engine: Engine,
    threads: usize,
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &(dyn Fn(&[Value], &ProcRun) -> bool + Sync),
) -> Result<TestDb> {
    run_cases_batch_observed_on(
        engine,
        threads,
        module,
        unit,
        cases,
        oracle,
        &mut gadt_obs::Recorder::disabled(),
    )
}

/// [`run_cases_batch`] with instrumentation: wraps the batch in a
/// `tgen_cases` span tagged with the unit and case count, and records
/// the counters `tgen.cases`, `tgen.passed` and `tgen.failed`. Each
/// case's verdict lands in per-case recorders merged in case order, so
/// the journal is thread-count invariant.
///
/// # Errors
/// Same as [`run_cases_batch`].
pub fn run_cases_batch_observed(
    threads: usize,
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &(dyn Fn(&[Value], &ProcRun) -> bool + Sync),
    rec: &mut gadt_obs::Recorder,
) -> Result<TestDb> {
    run_cases_batch_observed_on(Engine::default(), threads, module, unit, cases, oracle, rec)
}

/// [`run_cases_batch_observed`] on an explicit execution [`Engine`].
/// Journal spans and counters are engine-invariant: the same cases
/// produce the same `tgen.cases`/`tgen.passed`/`tgen.failed` totals on
/// either backend.
///
/// # Errors
/// Same as [`run_cases_batch`].
#[allow(clippy::too_many_arguments)]
pub fn run_cases_batch_observed_on(
    engine: Engine,
    threads: usize,
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &(dyn Fn(&[Value], &ProcRun) -> bool + Sync),
    rec: &mut gadt_obs::Recorder,
) -> Result<TestDb> {
    let proc = resolve_unit(module, unit)?;
    let cfg = lower(module);
    let prepared = PreparedEngine::new(module, &cfg, engine);
    let span = gadt_obs::span!(rec, "tgen_cases", unit = unit, cases = cases.len());
    let pool = gadt_exec::BatchExecutor::new(threads);
    let reports = pool.try_run_observed(cases.to_vec(), rec, |_, case, crec| {
        let run = run_unit(&prepared, proc, case.inputs.clone())?;
        let passed = oracle(&case.inputs, &run);
        crec.incr("tgen.cases");
        crec.incr(if passed { "tgen.passed" } else { "tgen.failed" });
        let mut outputs: Vec<Value> = run.outs.iter().map(|(_, v)| v.clone()).collect();
        if let Some(r) = &run.result {
            outputs.push(r.clone());
        }
        Ok(TestReport {
            code: case.code,
            inputs: case.inputs,
            outputs,
            passed,
        })
    });
    let reports = match reports {
        Ok(r) => r,
        Err(e) => {
            rec.exit(span);
            return Err(e);
        }
    };
    let mut db = TestDb::new(unit);
    for report in reports {
        db.add(report);
    }
    rec.exit(span);
    Ok(db)
}

/// [`run_cases_batch`] with persistence: every finished report streams
/// into `store` **in case order** through the executor's reorder-buffer
/// sink, so concurrent workers funnel through the one serialized
/// appender and the WAL bytes are identical at any thread count. The
/// returned database matches what [`run_cases`] builds.
///
/// Reports are persisted as they complete — a crash mid-batch leaves
/// the already-finished prefix safely in the WAL.
///
/// # Errors
/// Propagates the lowest-indexed case error; store I/O errors surface
/// as runtime diagnostics.
pub fn run_cases_batch_persisted(
    threads: usize,
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &(dyn Fn(&[Value], &ProcRun) -> bool + Sync),
    store: &gadt_store::SharedStore,
) -> Result<TestDb> {
    run_cases_batch_persisted_on(
        Engine::default(),
        threads,
        module,
        unit,
        cases,
        oracle,
        store,
    )
}

/// [`run_cases_batch_persisted`] on an explicit execution [`Engine`].
/// The WAL bytes are engine-invariant as well as thread-count
/// invariant: both backends feed identical reports through the
/// serialized appender.
///
/// # Errors
/// Same as [`run_cases_batch_persisted`].
#[allow(clippy::too_many_arguments)]
pub fn run_cases_batch_persisted_on(
    engine: Engine,
    threads: usize,
    module: &Module,
    unit: &str,
    cases: &[TestCase],
    oracle: &(dyn Fn(&[Value], &ProcRun) -> bool + Sync),
    store: &gadt_store::SharedStore,
) -> Result<TestDb> {
    let proc = resolve_unit(module, unit)?;
    let cfg = lower(module);
    let prepared = PreparedEngine::new(module, &cfg, engine);
    let pool = gadt_exec::BatchExecutor::new(threads);
    let mut sink_err: Option<std::io::Error> = None;
    let reports = pool.try_run_with_sink(
        cases.to_vec(),
        |_, case| {
            let run = run_unit(&prepared, proc, case.inputs.clone())?;
            let passed = oracle(&case.inputs, &run);
            let mut outputs: Vec<Value> = run.outs.iter().map(|(_, v)| v.clone()).collect();
            if let Some(r) = &run.result {
                outputs.push(r.clone());
            }
            Ok(TestReport {
                code: case.code,
                inputs: case.inputs,
                outputs,
                passed,
            })
        },
        |_, result: &Result<TestReport>| {
            let Ok(report) = result else { return };
            if sink_err.is_some() {
                return;
            }
            let mut guard = store.lock().expect("store mutex poisoned");
            if let Err(e) = guard.append_report(stored_report(unit, report)) {
                sink_err = Some(e);
            }
        },
    )?;
    if let Some(e) = sink_err {
        return Err(gadt_pascal::error::Diagnostic::new(
            gadt_pascal::error::Stage::Runtime,
            format!("knowledge store append failed: {e}"),
            gadt_pascal::span::Span::dummy(),
        ));
    }
    store
        .lock()
        .expect("store mutex poisoned")
        .sync()
        .map_err(|e| {
            gadt_pascal::error::Diagnostic::new(
                gadt_pascal::error::Stage::Runtime,
                format!("knowledge store sync failed: {e}"),
                gadt_pascal::span::Span::dummy(),
            )
        })?;
    let mut db = TestDb::new(unit);
    for report in reports {
        db.add(report);
    }
    Ok(db)
}

fn resolve_unit(module: &Module, unit: &str) -> Result<ProcId> {
    module.proc_by_name(unit).ok_or_else(|| {
        gadt_pascal::error::Diagnostic::new(
            gadt_pascal::error::Stage::Runtime,
            format!("unit `{unit}` not found"),
            gadt_pascal::span::Span::dummy(),
        )
    })
}

fn run_unit(engine: &PreparedEngine<'_>, proc: ProcId, inputs: Vec<Value>) -> Result<ProcRun> {
    // Verdict-only batches never need the event stream: the monitor-free
    // fast path returns identical `ProcRun`s/errors on both engines.
    engine.run_proc_fast(proc, inputs, Limits::default())
}

// ----------------------------------------------------------------------
// The paper's arrsum unit: instantiator, classifier, oracle
// ----------------------------------------------------------------------

/// Instantiates an `arrsum` frame (Figure 1's categories) into concrete
/// inputs `[a, n, b0]` for an `arrsum(a: array[1..cap]; n; var b)` unit.
/// Returns `None` when the frame cannot be realized with capacity `cap`
/// (e.g. `more` needs at least 3 elements).
pub fn arrsum_instantiator(frame: &Frame, cap: i64) -> Option<Vec<Value>> {
    let n: i64 = match frame.choice_of("size_of_array")? {
        "zero" => 0,
        "one" => 1,
        "two" => 2,
        "more" => {
            if cap < 3 {
                return None;
            }
            cap.min(5)
        }
        _ => return None,
    };
    if n > cap {
        return None;
    }
    let ty = frame.choice_of("type_of_elements").unwrap_or("positive");
    let dev = frame.choice_of("deviation").unwrap_or("small");
    // Base magnitude by deviation: small ≤ 10, average ≤ 100, large > 100.
    let spread: i64 = match dev {
        "small" => 2,
        "average" => 50,
        "large" => 500,
        _ => 2,
    };
    let mut elems = Vec::new();
    for i in 0..cap {
        let v = if i < n {
            let alternating = if i % 2 == 0 { 1 } else { -1 };
            match ty {
                "positive" => 5 + (i % 3) * spread.min(3),
                "negative" => -5 - (i % 3) * spread.min(3),
                "mixed" => alternating * (5 + i * spread / n.max(1)),
                _ => 5,
            }
        } else {
            0
        };
        elems.push(v);
    }
    Some(vec![elems.into(), Value::Int(n), Value::Int(0)])
}

/// Classifies concrete `arrsum` inputs back to a frame code — the
/// "function which automatically selects the suitable test frame" of
/// §5.3.2. Mirrors [`arrsum_instantiator`]'s deviation thresholds.
pub fn arrsum_frame_selector(inputs: &[Value]) -> Option<String> {
    let Value::Array(a) = inputs.first()? else {
        return None;
    };
    let n = inputs.get(1)?.as_int()?;
    let size = match n {
        0 => "zero",
        1 => "one",
        2 => "two",
        _ => "more",
    };
    let elems: Vec<i64> = (0..n)
        .filter_map(|i| a.get(a.lo + i).and_then(Value::as_int))
        .collect();
    let ty = if elems.is_empty() || elems.iter().all(|&x| x > 0) {
        "positive"
    } else if elems.iter().all(|&x| x < 0) {
        "negative"
    } else {
        "mixed"
    };
    let dev = if elems.is_empty() {
        "small"
    } else {
        let mean = elems.iter().sum::<i64>() as f64 / elems.len() as f64;
        let maxdev = elems
            .iter()
            .map(|&x| (x as f64 - mean).abs())
            .fold(0.0_f64, f64::max);
        if maxdev <= 10.0 {
            "small"
        } else if maxdev <= 100.0 {
            "average"
        } else {
            "large"
        }
    };
    Some(format!("{size}.{ty}.{dev}"))
}

/// The reference oracle for `arrsum`: the output `b` must equal the sum
/// of the first `n` elements.
pub fn arrsum_oracle(inputs: &[Value], run: &ProcRun) -> bool {
    let Some(Value::Array(a)) = inputs.first() else {
        return false;
    };
    let Some(n) = inputs.get(1).and_then(Value::as_int) else {
        return false;
    };
    let expected: i64 = (0..n)
        .filter_map(|i| a.get(a.lo + i).and_then(Value::as_int))
        .sum();
    run.outs
        .first()
        .and_then(|(_, v)| v.as_int())
        .is_some_and(|b| b == expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::{generate_frames, FrameGenOptions};
    use crate::spec::{parse_spec, ARRSUM_SPEC};
    use gadt_pascal::sema::compile;
    use gadt_pascal::testprogs;

    fn figure1_frames() -> GeneratedFrames {
        let s = parse_spec(ARRSUM_SPEC).unwrap();
        generate_frames(&s, FrameGenOptions::default())
    }

    #[test]
    fn instantiator_skips_unrealizable_frames() {
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        // `more` frames need ≥3 elements: only the 4 small-size frames
        // remain with capacity 2.
        let codes: Vec<&str> = cases.iter().map(|c| c.code.as_str()).collect();
        assert_eq!(
            codes,
            vec![
                "zero.positive.small",
                "one.positive.small",
                "two.positive.small",
                "two.negative.small"
            ]
        );
    }

    #[test]
    fn instantiator_with_larger_capacity_covers_all_frames() {
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 10));
        assert_eq!(cases.len(), g.frames.len());
    }

    #[test]
    fn running_cases_against_paper_arrsum_all_pass() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        let db = run_cases(&m, "arrsum", &cases, &|ins, run| arrsum_oracle(ins, run)).unwrap();
        assert_eq!(db.len(), 4);
        for (code, reports) in db.iter() {
            for r in reports {
                assert!(r.passed, "{code} failed: {:?}", r.outputs);
            }
        }
        assert_eq!(db.frame_verdict("two.positive.small"), Some(true));
        assert_eq!(db.frame_verdict("more.mixed.large"), None);
    }

    #[test]
    fn buggy_unit_produces_failing_reports() {
        let src = "program t;
             type intarray = array[1..2] of integer;
             var d: intarray; e: integer;
             procedure arrsum(a: intarray; n: integer; var b: integer);
             var i: integer;
             begin b := 1; for i := 1 to n do b := b + a[i]; end;
             begin arrsum(d, 2, e) end.";
        let m = compile(src).unwrap();
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        let db = run_cases(&m, "arrsum", &cases, &|ins, run| arrsum_oracle(ins, run)).unwrap();
        assert_eq!(db.frame_verdict("two.positive.small"), Some(false));
    }

    #[test]
    fn frame_selector_matches_instantiator() {
        // Classifier∘instantiator must be the identity on frame codes —
        // otherwise debugging-time lookups would miss the database.
        let g = figure1_frames();
        for f in &g.frames {
            if let Some(inputs) = arrsum_instantiator(f, 10) {
                let code = arrsum_frame_selector(&inputs).unwrap();
                assert_eq!(code, f.code(), "classifier disagrees for {f}");
            }
        }
    }

    #[test]
    fn frame_selector_on_the_paper_query() {
        // §8: the query arrsum(In [1,2], In 2, Out 3) classifies as
        // (two, positive, small).
        let inputs = vec![vec![1, 2].into(), Value::Int(2), Value::Int(0)];
        assert_eq!(
            arrsum_frame_selector(&inputs).unwrap(),
            "two.positive.small"
        );
    }

    #[test]
    fn db_verdicts() {
        let mut db = TestDb::new("u");
        assert!(db.is_empty());
        db.add(TestReport {
            code: "a".into(),
            inputs: vec![Value::Int(1)],
            outputs: vec![],
            passed: true,
        });
        db.add(TestReport {
            code: "a".into(),
            inputs: vec![Value::Int(2)],
            outputs: vec![],
            passed: false,
        });
        db.add(TestReport {
            code: "b".into(),
            inputs: vec![],
            outputs: vec![],
            passed: true,
        });
        assert_eq!(db.frame_verdict("a"), Some(false));
        assert_eq!(db.frame_verdict("b"), Some(true));
        assert_eq!(db.frame_verdict("c"), None);
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn add_dedupes_same_code_and_inputs_keeping_latest_verdict() {
        // Regression: repeated `run_cases_batch` calls over one database
        // used to pile up duplicate reports for identical case inputs.
        let mut db = TestDb::new("u");
        let report = |passed| TestReport {
            code: "a".into(),
            inputs: vec![Value::Int(7)],
            outputs: vec![Value::Int(14)],
            passed,
        };
        db.add(report(true));
        db.add(report(true));
        assert_eq!(db.len(), 1, "identical report must not duplicate");
        db.add(report(false));
        assert_eq!(db.len(), 1);
        assert_eq!(db.frame_verdict("a"), Some(false), "latest verdict wins");
        // Different inputs under the same code remain distinct reports.
        db.add(TestReport {
            inputs: vec![Value::Int(8)],
            ..report(true)
        });
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn rerunning_cases_into_one_db_does_not_duplicate() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        let once = run_cases_batch(2, &m, "arrsum", &cases, &|i, r| arrsum_oracle(i, r)).unwrap();
        let mut twice = once.clone();
        for (_, reports) in once.iter() {
            for r in reports {
                twice.add(r.clone());
            }
        }
        assert_eq!(once, twice);
    }

    #[test]
    fn db_persists_and_loads_through_the_store() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        let db = run_cases(&m, "arrsum", &cases, &|i, r| arrsum_oracle(i, r)).unwrap();

        let dir = gadt_store::TempDir::new("tgen-persist");
        let mut store = gadt_store::KnowledgeStore::open(dir.path()).unwrap();
        assert_eq!(db.persist(&mut store).unwrap(), db.len());
        // Idempotent: persisting again writes nothing.
        assert_eq!(db.persist(&mut store).unwrap(), 0);

        let loaded = TestDb::load_from(&store, "ArrSum");
        assert_eq!(loaded, db);
        assert_eq!(TestDb::load_from(&store, "nosuch").len(), 0);
    }

    #[test]
    fn persisted_batch_store_bytes_are_thread_count_invariant() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        let mut fingerprints = Vec::new();
        for threads in [1, 2, 8] {
            let dir = gadt_store::TempDir::new("tgen-fp");
            let store = gadt_store::KnowledgeStore::open(dir.path())
                .unwrap()
                .into_shared();
            let db = run_cases_batch_persisted(
                threads,
                &m,
                "arrsum",
                &cases,
                &|i, r| arrsum_oracle(i, r),
                &store,
            )
            .unwrap();
            assert_eq!(db.len(), cases.len());
            let guard = store.lock().unwrap();
            assert_eq!(guard.reports_len(), cases.len());
            fingerprints.push(guard.disk_fingerprint().unwrap());
        }
        assert_eq!(fingerprints[0], fingerprints[1]);
        assert_eq!(fingerprints[0], fingerprints[2]);
    }

    #[test]
    fn unknown_unit_is_an_error() {
        let m = compile(testprogs::SQRTEST).unwrap();
        assert!(run_cases(&m, "nosuch", &[], &|_, _| true).is_err());
        assert!(run_cases_batch(4, &m, "nosuch", &[], &|_, _| true).is_err());
    }

    #[test]
    fn observed_cases_count_verdicts_deterministically() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        let journal_at = |threads: usize| {
            let mut rec = gadt_obs::Recorder::untimed();
            run_cases_batch_observed(
                threads,
                &m,
                "arrsum",
                &cases,
                &|i, r| arrsum_oracle(i, r),
                &mut rec,
            )
            .unwrap();
            rec.finish()
        };
        let one = journal_at(1);
        assert_eq!(one.counter("tgen.cases"), cases.len() as u64);
        assert_eq!(one.counter("tgen.passed"), cases.len() as u64);
        assert_eq!(one.counter("tgen.failed"), 0);
        assert_eq!(one.fingerprint(), journal_at(2).fingerprint());
        assert_eq!(one.fingerprint(), journal_at(8).fingerprint());
    }

    #[test]
    fn parallel_db_equals_sequential_db() {
        let m = compile(testprogs::SQRTEST).unwrap();
        let g = figure1_frames();
        let cases = instantiate_cases(&g, |f| arrsum_instantiator(f, 2));
        let seq = run_cases(&m, "arrsum", &cases, &|ins, run| arrsum_oracle(ins, run)).unwrap();
        for threads in [1, 2, 8] {
            let par = run_cases_batch(threads, &m, "arrsum", &cases, &|ins, run| {
                arrsum_oracle(ins, run)
            })
            .unwrap();
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
