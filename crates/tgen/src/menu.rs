//! Interactive frame selection (§5.3.2).
//!
//! "For some procedures we cannot define such [automatic frame-selector]
//! functions. In this case, the test specification can be used in the
//! user interactions to select the correct test frame. The interactions
//! based on the test specification are much more convenient for the
//! user, because he/she can select the suitable choices from a menu."
//!
//! [`select_frame`] walks the specification's categories, offering only
//! the choices admissible under the properties accumulated so far, and
//! returns the coded frame for database lookup.

use crate::frames::FrameGenOptions;
use crate::spec::{Choice, TestSpec};
use std::collections::BTreeSet;
use std::io::{BufRead, Write};

/// Runs the category-by-category menu over the given I/O pair and
/// returns the selected frame's code (`None` if the user aborts with an
/// empty line or input ends).
///
/// # Examples
/// ```
/// use std::io::Cursor;
/// let spec = gadt_tgen::spec::parse_spec(gadt_tgen::spec::ARRSUM_SPEC).unwrap();
/// let mut out = Vec::new();
/// let code = gadt_tgen::menu::select_frame(
///     &spec,
///     Cursor::new(&b"3\n1\n1\n"[..]),
///     &mut out,
///     Default::default(),
/// );
/// assert_eq!(code.as_deref(), Some("two.positive.small"));
/// ```
pub fn select_frame(
    spec: &TestSpec,
    mut input: impl BufRead,
    mut output: impl Write,
    opts: FrameGenOptions,
) -> Option<String> {
    let mut props: BTreeSet<String> = BTreeSet::new();
    let mut picks: Vec<String> = Vec::new();
    for cat in &spec.categories {
        let eligible: Vec<&Choice> = eligible_choices(cat.choices.as_slice(), &props, opts);
        if eligible.is_empty() {
            continue;
        }
        let _ = writeln!(output, "category {}:", cat.name);
        for (i, c) in eligible.iter().enumerate() {
            let _ = writeln!(output, "  {}) {}", i + 1, c.name);
        }
        let _ = write!(output, "select> ");
        let _ = output.flush();
        let mut line = String::new();
        if input.read_line(&mut line).is_err() {
            return None;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return None;
        }
        // Accept a 1-based number or the choice name.
        let chosen = trimmed
            .parse::<usize>()
            .ok()
            .and_then(|i| i.checked_sub(1))
            .and_then(|i| eligible.get(i).copied())
            .or_else(|| {
                eligible
                    .iter()
                    .find(|c| c.name.eq_ignore_ascii_case(trimmed))
                    .copied()
            })?;
        props.extend(chosen.properties.iter().cloned());
        picks.push(chosen.name.clone());
    }
    Some(picks.join("."))
}

/// Same eligibility rule as frame generation (including the selector
/// precedence), but keeping `SINGLE` choices selectable — the user may
/// well be classifying a degenerate input.
fn eligible_choices<'c>(
    choices: &'c [Choice],
    props: &BTreeSet<String>,
    opts: FrameGenOptions,
) -> Vec<&'c Choice> {
    let satisfied: Vec<&Choice> = choices
        .iter()
        .filter(|c| c.selector.as_ref().is_some_and(|s| s.eval(props)))
        .collect();
    if opts.selector_precedence && !satisfied.is_empty() {
        return satisfied;
    }
    choices
        .iter()
        .filter(|c| c.selector.as_ref().is_none_or(|s| s.eval(props)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{parse_spec, ARRSUM_SPEC};
    use std::io::Cursor;

    fn spec() -> TestSpec {
        parse_spec(ARRSUM_SPEC).unwrap()
    }

    fn pick(answers: &str) -> Option<String> {
        let mut shown = Vec::new();
        select_frame(
            &spec(),
            Cursor::new(answers.as_bytes()),
            &mut shown,
            Default::default(),
        )
    }

    #[test]
    fn selecting_by_number() {
        // size: 4) more (adds MORE) → type: mixed only (precedence) →
        // deviation: large/average.
        assert_eq!(pick("4\n1\n1\n").as_deref(), Some("more.mixed.large"));
        assert_eq!(pick("4\n1\n2\n").as_deref(), Some("more.mixed.average"));
    }

    #[test]
    fn selecting_by_name() {
        assert_eq!(
            pick("two\nnegative\nsmall\n").as_deref(),
            Some("two.negative.small")
        );
    }

    #[test]
    fn menu_adapts_to_selected_properties() {
        let mut shown = Vec::new();
        let code = select_frame(
            &spec(),
            Cursor::new(&b"4\n1\n1\n"[..]),
            &mut shown,
            Default::default(),
        );
        assert_eq!(code.as_deref(), Some("more.mixed.large"));
        let text = String::from_utf8(shown).unwrap();
        // After choosing `more`, only `mixed` is offered for the type
        // category, and `small` is displaced by large/average.
        assert!(text.contains("1) mixed"), "{text}");
        assert!(
            !text.contains("positive\n  2) negative\n  3) mixed"),
            "{text}"
        );
        assert!(text.contains("1) large"), "{text}");
    }

    #[test]
    fn abort_on_empty_or_bad_input() {
        assert_eq!(pick("\n"), None);
        assert_eq!(pick("99\n"), None);
        assert_eq!(pick("nosuchchoice\n"), None);
    }

    #[test]
    fn selected_codes_match_database_keys() {
        // Frames generated and frames selected interactively use the same
        // coded form.
        let g = crate::frames::generate_frames(&spec(), Default::default());
        let selected = pick("4\n1\n2\n").unwrap();
        assert!(g.by_code(&selected).is_some(), "{selected}");
    }
}
