//! The T-GEN test specification language (§2, Figure 1).
//!
//! A specification partitions a unit's input space into *categories*
//! ("critical properties of parameters"), each divided into *choices*.
//! Choices may attach *property* names (logical variables that become
//! true when the choice is taken) and *selector expressions* (`if <expr>`
//! over property names) restricting when the choice is admissible.
//! Frames group into *test scripts* (shared environments) and *result*
//! categories via their own selectors.
//!
//! The concrete syntax follows the paper's Figure 1:
//!
//! ```text
//! test arrsum;
//! category size_of_array;
//!   zero : property SINGLE;
//!   one  : property SINGLE;
//!   two  : ;
//!   more : property MORE;
//! category type_of_elements;
//!   positive : ;
//!   negative : ;
//!   mixed : if MORE property MIXED;
//! category deviation;
//!   small : ;
//!   large : if MIXED;
//!   average : if MIXED;
//! scripts
//!   script_1 : if MIXED;
//!   script_2 : if not MIXED;
//! result
//!   result_1 : if MIXED;
//! ```

use gadt_pascal::error::{Diagnostic, Result, Stage};
use gadt_pascal::span::Span;
use std::collections::BTreeSet;
use std::fmt;

/// A selector expression over property names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelExpr {
    /// A property name (true when the frame carries the property).
    Prop(String),
    /// Negation.
    Not(Box<SelExpr>),
    /// Conjunction.
    And(Box<SelExpr>, Box<SelExpr>),
    /// Disjunction.
    Or(Box<SelExpr>, Box<SelExpr>),
}

impl SelExpr {
    /// Evaluates the selector under a set of (uppercased) property names.
    pub fn eval(&self, props: &BTreeSet<String>) -> bool {
        match self {
            SelExpr::Prop(p) => props.contains(&p.to_ascii_uppercase()),
            SelExpr::Not(e) => !e.eval(props),
            SelExpr::And(a, b) => a.eval(props) && b.eval(props),
            SelExpr::Or(a, b) => a.eval(props) || b.eval(props),
        }
    }
}

impl fmt::Display for SelExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelExpr::Prop(p) => write!(f, "{p}"),
            SelExpr::Not(e) => write!(f, "not {e}"),
            SelExpr::And(a, b) => write!(f, "({a} and {b})"),
            SelExpr::Or(a, b) => write!(f, "({a} or {b})"),
        }
    }
}

/// One choice within a category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Choice {
    /// Choice name (e.g. `mixed`).
    pub name: String,
    /// Admissibility selector (`if MORE`), if any.
    pub selector: Option<SelExpr>,
    /// Properties the choice contributes (uppercased; `SINGLE` is the
    /// special marker of §2).
    pub properties: Vec<String>,
}

impl Choice {
    /// Whether the choice carries the special `SINGLE` marker.
    pub fn is_single(&self) -> bool {
        self.properties.iter().any(|p| p == "SINGLE")
    }
}

/// One category with its choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Category {
    /// Category name (e.g. `size_of_array`).
    pub name: String,
    /// Its choices, in declaration order.
    pub choices: Vec<Choice>,
}

/// A named group (test script or result category) with a selector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupDef {
    /// Group name.
    pub name: String,
    /// Membership selector; `None` matches every frame.
    pub selector: Option<SelExpr>,
}

/// A complete test specification for one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSpec {
    /// The unit under test (e.g. `arrsum`).
    pub unit: String,
    /// Input categories in declaration order.
    pub categories: Vec<Category>,
    /// Test scripts (§2's environment grouping).
    pub scripts: Vec<GroupDef>,
    /// Result categories.
    pub results: Vec<GroupDef>,
}

impl TestSpec {
    /// Looks up a category by name.
    pub fn category(&self, name: &str) -> Option<&Category> {
        self.categories.iter().find(|c| c.name == name)
    }
}

/// Parses a test specification.
///
/// # Errors
/// Returns a [`Diagnostic`] describing the first syntax error.
///
/// # Examples
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = gadt_tgen::spec::parse_spec(
///     "test arrsum;
///      category size; zero : property SINGLE; more : property MORE;
///      scripts s1 : if MORE;",
/// )?;
/// assert_eq!(spec.unit, "arrsum");
/// assert_eq!(spec.categories[0].choices.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_spec(source: &str) -> Result<TestSpec> {
    let mut p = SpecParser::new(source);
    p.spec()
}

fn err(msg: impl Into<String>, pos: usize) -> Diagnostic {
    Diagnostic::new(Stage::Parse, msg, Span::new(pos as u32, pos as u32 + 1))
}

struct SpecParser<'s> {
    toks: Vec<(usize, String)>,
    pos: usize,
    src_len: usize,
    _marker: std::marker::PhantomData<&'s ()>,
}

impl<'s> SpecParser<'s> {
    fn new(source: &'s str) -> Self {
        // Tokenize: words, punctuation (; : , ( )).
        let mut toks = Vec::new();
        let bytes = source.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                toks.push((start, source[start..i].to_string()));
            } else if matches!(c, ';' | ':' | ',' | '(' | ')') {
                toks.push((i, c.to_string()));
                i += 1;
            } else if c == '{' {
                // Comment.
                while i < bytes.len() && bytes[i] != b'}' {
                    i += 1;
                }
                i += 1;
            } else {
                toks.push((i, c.to_string()));
                i += 1;
            }
        }
        SpecParser {
            toks,
            pos: 0,
            src_len: source.len(),
            _marker: std::marker::PhantomData,
        }
    }

    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(|(_, t)| t.as_str())
    }

    fn peek_pos(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.src_len)
    }

    fn bump(&mut self) -> Option<String> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &str) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(err(
                format!(
                    "expected `{t}`, found `{}`",
                    self.peek().unwrap_or("end of input")
                ),
                self.peek_pos(),
            ))
        }
    }

    fn word(&mut self) -> Result<String> {
        match self.peek() {
            Some(w) if w.chars().all(|c| c.is_alphanumeric() || c == '_') => {
                Ok(self.bump().expect("peeked"))
            }
            other => Err(err(
                format!(
                    "expected a name, found `{}`",
                    other.unwrap_or("end of input")
                ),
                self.peek_pos(),
            )),
        }
    }

    fn keyword(&self, t: Option<&str>) -> bool {
        matches!(
            t.map(|s| s.to_ascii_lowercase()).as_deref(),
            Some("category" | "scripts" | "result" | "test")
        )
    }

    fn spec(&mut self) -> Result<TestSpec> {
        let kw = self.word()?;
        if !kw.eq_ignore_ascii_case("test") {
            return Err(err("specification must start with `test`", 0));
        }
        let unit = self.word()?;
        // Accept `;` or `,` after the unit name (the paper prints a comma).
        let _ = self.eat(";") || self.eat(",");

        let mut categories = Vec::new();
        let mut scripts = Vec::new();
        let mut results = Vec::new();
        while let Some(t) = self.peek() {
            match t.to_ascii_lowercase().as_str() {
                "category" => {
                    self.bump();
                    let name = self.word()?;
                    self.expect(";")?;
                    let mut choices = Vec::new();
                    while self.peek().is_some() && !self.keyword(self.peek()) {
                        choices.push(self.choice()?);
                    }
                    categories.push(Category { name, choices });
                }
                "scripts" => {
                    self.bump();
                    while self.peek().is_some() && !self.keyword(self.peek()) {
                        scripts.push(self.group()?);
                    }
                }
                "result" => {
                    self.bump();
                    while self.peek().is_some() && !self.keyword(self.peek()) {
                        results.push(self.group()?);
                    }
                }
                other => {
                    return Err(err(
                        format!("expected `category`, `scripts` or `result`, found `{other}`"),
                        self.peek_pos(),
                    ))
                }
            }
        }
        Ok(TestSpec {
            unit,
            categories,
            scripts,
            results,
        })
    }

    fn choice(&mut self) -> Result<Choice> {
        let name = self.word()?;
        self.expect(":")?;
        let mut selector = None;
        let mut properties = Vec::new();
        loop {
            match self.peek().map(|s| s.to_ascii_lowercase()) {
                Some(t) if t == "if" => {
                    self.bump();
                    selector = Some(self.sel_or()?);
                }
                Some(t) if t == "property" => {
                    self.bump();
                    properties.push(self.word()?.to_ascii_uppercase());
                    while self.eat(",") {
                        properties.push(self.word()?.to_ascii_uppercase());
                    }
                }
                Some(t) if t == ";" => {
                    self.bump();
                    break;
                }
                None => break,
                Some(other) => {
                    return Err(err(
                        format!("unexpected `{other}` in choice definition"),
                        self.peek_pos(),
                    ))
                }
            }
        }
        Ok(Choice {
            name,
            selector,
            properties,
        })
    }

    fn group(&mut self) -> Result<GroupDef> {
        let name = self.word()?;
        self.expect(":")?;
        let selector = if self.peek().map(|s| s.to_ascii_lowercase()).as_deref() == Some("if") {
            self.bump();
            Some(self.sel_or()?)
        } else {
            None
        };
        let _ = self.eat(";");
        Ok(GroupDef { name, selector })
    }

    fn sel_or(&mut self) -> Result<SelExpr> {
        let mut lhs = self.sel_and()?;
        while self.peek().map(|s| s.to_ascii_lowercase()).as_deref() == Some("or") {
            self.bump();
            let rhs = self.sel_and()?;
            lhs = SelExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn sel_and(&mut self) -> Result<SelExpr> {
        let mut lhs = self.sel_atom()?;
        while self.peek().map(|s| s.to_ascii_lowercase()).as_deref() == Some("and") {
            self.bump();
            let rhs = self.sel_atom()?;
            lhs = SelExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn sel_atom(&mut self) -> Result<SelExpr> {
        if self.peek().map(|s| s.to_ascii_lowercase()).as_deref() == Some("not") {
            self.bump();
            return Ok(SelExpr::Not(Box::new(self.sel_atom()?)));
        }
        if self.eat("(") {
            let e = self.sel_or()?;
            self.expect(")")?;
            return Ok(e);
        }
        Ok(SelExpr::Prop(self.word()?.to_ascii_uppercase()))
    }
}

/// The paper's Figure 1 specification for `arrsum`, shared as a fixture.
pub const ARRSUM_SPEC: &str = "
test arrsum;
category size_of_array;
  zero : property SINGLE;
  one  : property SINGLE;
  two  : ;
  more : property MORE;
category type_of_elements;
  positive : ;
  negative : ;
  mixed : if MORE property MIXED;
category deviation;
  small : ;
  large : if MIXED;
  average : if MIXED;
scripts
  script_1 : if MIXED;
  script_2 : if not MIXED;
result
  result_1 : if MIXED;
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1() {
        let s = parse_spec(ARRSUM_SPEC).expect("parse");
        assert_eq!(s.unit, "arrsum");
        assert_eq!(s.categories.len(), 3);
        assert_eq!(s.categories[0].name, "size_of_array");
        assert_eq!(s.categories[0].choices.len(), 4);
        assert!(s.categories[0].choices[0].is_single());
        assert!(s.categories[0].choices[1].is_single());
        assert!(!s.categories[0].choices[3].is_single());
        assert_eq!(
            s.categories[1].choices[2].selector,
            Some(SelExpr::Prop("MORE".to_string()))
        );
        assert_eq!(s.scripts.len(), 2);
        assert_eq!(
            s.scripts[1].selector,
            Some(SelExpr::Not(Box::new(SelExpr::Prop("MIXED".to_string()))))
        );
        assert_eq!(s.results.len(), 1);
    }

    #[test]
    fn selector_evaluation() {
        let props: BTreeSet<String> = ["MORE".to_string(), "MIXED".to_string()].into();
        assert!(SelExpr::Prop("MORE".into()).eval(&props));
        assert!(!SelExpr::Prop("SINGLE".into()).eval(&props));
        assert!(SelExpr::Not(Box::new(SelExpr::Prop("SINGLE".into()))).eval(&props));
        assert!(SelExpr::And(
            Box::new(SelExpr::Prop("MORE".into())),
            Box::new(SelExpr::Prop("MIXED".into()))
        )
        .eval(&props));
        assert!(SelExpr::Or(
            Box::new(SelExpr::Prop("NOPE".into())),
            Box::new(SelExpr::Prop("MIXED".into()))
        )
        .eval(&props));
    }

    #[test]
    fn complex_selectors_parse() {
        let s = parse_spec(
            "test t;
             category c;
               a : if (P and Q) or not R property X, Y;",
        )
        .unwrap();
        let ch = &s.categories[0].choices[0];
        assert_eq!(ch.properties, vec!["X".to_string(), "Y".to_string()]);
        assert!(matches!(ch.selector, Some(SelExpr::Or(_, _))));
    }

    #[test]
    fn properties_are_case_normalized() {
        let s = parse_spec("test t; category c; a : property more;").unwrap();
        assert_eq!(
            s.categories[0].choices[0].properties,
            vec!["MORE".to_string()]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let s = parse_spec("test t; { a comment } category c; a : ;").unwrap();
        assert_eq!(s.categories.len(), 1);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_spec("category c;").is_err());
        assert!(parse_spec("test t; category c; a b;").is_err());
        assert!(parse_spec("test t; wibble x;").is_err());
    }
}
