//! Test-frame generation (§2).
//!
//! "A test frame contains exactly one choice from each category … A
//! choice can be made in a test frame if the selector expression
//! associated with the choice is true."
//!
//! Two details pin down the semantics so the paper's worked example comes
//! out exactly:
//!
//! * **Selector precedence.** Within a category, when at least one
//!   choice's selector is satisfied, only those choices are eligible;
//!   selector-less choices act as defaults when no selector fires. This
//!   reproduces the paper's claim that `script_1` (frames with `MIXED`)
//!   "contains two frames: (more, mixed, large) and (more, mixed,
//!   average)" — `small` is a default displaced by `large`/`average`.
//!   The classic Ostrand–Balcer semantics (every satisfied or
//!   unconditioned choice eligible) is available via
//!   [`FrameGenOptions::selector_precedence`] `= false`.
//! * **`SINGLE` frames.** "Only one frame is generated for each choice
//!   associated with the SINGLE property": a `SINGLE` choice is excluded
//!   from the combinatorial product and instead yields one frame, with
//!   every other category set to its first eligible non-`SINGLE` choice.

use crate::spec::{Category, Choice, TestSpec};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One generated test frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// `(category, choice)` pairs, in category order. Categories with no
    /// eligible choice under the frame's properties are omitted.
    pub choices: Vec<(String, String)>,
    /// Property names accumulated from the chosen choices (uppercased).
    pub properties: BTreeSet<String>,
}

impl Frame {
    /// The coded form used to key the test-report database (§2): choice
    /// names joined with `.`, e.g. `more.mixed.large`.
    pub fn code(&self) -> String {
        self.choices
            .iter()
            .map(|(_, c)| c.as_str())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// The choice taken in `category`, if any.
    pub fn choice_of(&self, category: &str) -> Option<&str> {
        self.choices
            .iter()
            .find(|(c, _)| c == category)
            .map(|(_, ch)| ch.as_str())
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (_, c)) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

/// Options controlling frame generation.
#[derive(Debug, Clone, Copy)]
pub struct FrameGenOptions {
    /// Whether satisfied selectors displace selector-less defaults within
    /// a category (the semantics matching the paper's worked example).
    pub selector_precedence: bool,
}

impl Default for FrameGenOptions {
    fn default() -> Self {
        FrameGenOptions {
            selector_precedence: true,
        }
    }
}

/// All frames generated from a specification, grouped into scripts and
/// result categories.
#[derive(Debug, Clone)]
pub struct GeneratedFrames {
    /// The frames, `SINGLE` frames first, then the combinatorial product
    /// in category order.
    pub frames: Vec<Frame>,
    /// Frame indices per test script.
    pub scripts: BTreeMap<String, Vec<usize>>,
    /// Frame indices per result category.
    pub results: BTreeMap<String, Vec<usize>>,
}

impl GeneratedFrames {
    /// Finds a frame by its code.
    pub fn by_code(&self, code: &str) -> Option<&Frame> {
        self.frames.iter().find(|f| f.code() == code)
    }

    /// The frames of one script.
    pub fn script(&self, name: &str) -> Vec<&Frame> {
        self.scripts
            .get(name)
            .map(|ix| ix.iter().map(|&i| &self.frames[i]).collect())
            .unwrap_or_default()
    }
}

/// Eligible choices of `cat` under `props`.
fn eligible<'c>(
    cat: &'c Category,
    props: &BTreeSet<String>,
    opts: FrameGenOptions,
    include_single: bool,
) -> Vec<&'c Choice> {
    let candidates: Vec<&Choice> = cat
        .choices
        .iter()
        .filter(|c| include_single || !c.is_single())
        .collect();
    let satisfied: Vec<&Choice> = candidates
        .iter()
        .copied()
        .filter(|c| c.selector.as_ref().is_some_and(|s| s.eval(props)))
        .collect();
    if opts.selector_precedence && !satisfied.is_empty() {
        return satisfied;
    }
    candidates
        .into_iter()
        .filter(|c| c.selector.as_ref().is_none_or(|s| s.eval(props)))
        .collect()
}

/// Generates all test frames for a specification.
///
/// # Examples
/// ```
/// let spec = gadt_tgen::spec::parse_spec(gadt_tgen::spec::ARRSUM_SPEC).unwrap();
/// let frames = gadt_tgen::frames::generate_frames(&spec, Default::default());
/// // §2: script_1 contains (more, mixed, large) and (more, mixed, average).
/// let s1: Vec<String> = frames.script("script_1").iter().map(|f| f.to_string()).collect();
/// assert_eq!(s1, vec!["(more, mixed, large)", "(more, mixed, average)"]);
/// ```
pub fn generate_frames(spec: &TestSpec, opts: FrameGenOptions) -> GeneratedFrames {
    let mut frames = Vec::new();

    // SINGLE frames.
    for (i, cat) in spec.categories.iter().enumerate() {
        for choice in cat.choices.iter().filter(|c| c.is_single()) {
            let mut props: BTreeSet<String> = BTreeSet::new();
            let mut picks: Vec<(String, String)> = Vec::new();
            let mut ok = true;
            for (j, other) in spec.categories.iter().enumerate() {
                if j == i {
                    if choice.selector.as_ref().is_some_and(|s| !s.eval(&props)) {
                        ok = false;
                        break;
                    }
                    picks.push((other.name.clone(), choice.name.clone()));
                    props.extend(choice.properties.iter().cloned());
                } else if let Some(first) = eligible(other, &props, opts, false).first() {
                    picks.push((other.name.clone(), first.name.clone()));
                    props.extend(first.properties.iter().cloned());
                }
                // A category with no eligible choice is omitted.
            }
            if ok {
                frames.push(Frame {
                    choices: picks,
                    properties: props,
                });
            }
        }
    }

    // Combinatorial product over non-SINGLE choices.
    fn product(
        spec: &TestSpec,
        opts: FrameGenOptions,
        idx: usize,
        picks: &mut Vec<(String, String)>,
        props: &mut BTreeSet<String>,
        out: &mut Vec<Frame>,
    ) {
        let Some(cat) = spec.categories.get(idx) else {
            out.push(Frame {
                choices: picks.clone(),
                properties: props.clone(),
            });
            return;
        };
        let options = eligible(cat, props, opts, false);
        if options.is_empty() {
            // Category omitted under these properties.
            product(spec, opts, idx + 1, picks, props, out);
            return;
        }
        for choice in options {
            picks.push((cat.name.clone(), choice.name.clone()));
            let added: Vec<String> = choice
                .properties
                .iter()
                .filter(|p| !props.contains(*p))
                .cloned()
                .collect();
            props.extend(added.iter().cloned());
            product(spec, opts, idx + 1, picks, props, out);
            picks.pop();
            for p in added {
                props.remove(&p);
            }
        }
    }
    let mut picks = Vec::new();
    let mut props = BTreeSet::new();
    product(spec, opts, 0, &mut picks, &mut props, &mut frames);

    // Group into scripts and result categories.
    let mut scripts: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut results: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for g in &spec.scripts {
        scripts.insert(g.name.clone(), Vec::new());
    }
    for g in &spec.results {
        results.insert(g.name.clone(), Vec::new());
    }
    for (i, f) in frames.iter().enumerate() {
        for g in &spec.scripts {
            if g.selector.as_ref().is_none_or(|s| s.eval(&f.properties)) {
                scripts.get_mut(&g.name).expect("inserted").push(i);
            }
        }
        for g in &spec.results {
            if g.selector.as_ref().is_none_or(|s| s.eval(&f.properties)) {
                results.get_mut(&g.name).expect("inserted").push(i);
            }
        }
    }

    GeneratedFrames {
        frames,
        scripts,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{parse_spec, ARRSUM_SPEC};

    fn figure1() -> GeneratedFrames {
        let spec = parse_spec(ARRSUM_SPEC).unwrap();
        generate_frames(&spec, FrameGenOptions::default())
    }

    #[test]
    fn figure1_frame_inventory() {
        let g = figure1();
        let codes: Vec<String> = g.frames.iter().map(|f| f.code()).collect();
        assert_eq!(
            codes,
            vec![
                // SINGLE frames
                "zero.positive.small",
                "one.positive.small",
                // product: two × {positive, negative} × small
                "two.positive.small",
                "two.negative.small",
                // product: more forces mixed, which forces large/average
                "more.mixed.large",
                "more.mixed.average",
            ]
        );
    }

    #[test]
    fn figure1_script_grouping_matches_paper() {
        // §2: "script_1 contains two frames: (more, mixed, large) and
        // (more, mixed, average)".
        let g = figure1();
        let s1: Vec<String> = g.script("script_1").iter().map(|f| f.code()).collect();
        assert_eq!(s1, vec!["more.mixed.large", "more.mixed.average"]);
        let s2: Vec<String> = g.script("script_2").iter().map(|f| f.code()).collect();
        assert_eq!(
            s2,
            vec![
                "zero.positive.small",
                "one.positive.small",
                "two.positive.small",
                "two.negative.small"
            ]
        );
    }

    #[test]
    fn figure1_result_grouping() {
        let g = figure1();
        let r1: Vec<String> = g.results["result_1"]
            .iter()
            .map(|&i| g.frames[i].code())
            .collect();
        assert_eq!(r1, vec!["more.mixed.large", "more.mixed.average"]);
    }

    #[test]
    fn single_choices_generate_exactly_one_frame_each() {
        let g = figure1();
        let zero_frames = g
            .frames
            .iter()
            .filter(|f| f.choice_of("size_of_array") == Some("zero"))
            .count();
        assert_eq!(zero_frames, 1);
        let one_frames = g
            .frames
            .iter()
            .filter(|f| f.choice_of("size_of_array") == Some("one"))
            .count();
        assert_eq!(one_frames, 1);
    }

    #[test]
    fn classic_semantics_includes_defaults() {
        let spec = parse_spec(ARRSUM_SPEC).unwrap();
        let g = generate_frames(
            &spec,
            FrameGenOptions {
                selector_precedence: false,
            },
        );
        let codes: Vec<String> = g.frames.iter().map(|f| f.code()).collect();
        // Without precedence, (more, positive, small) and (more, mixed,
        // small) exist too.
        assert!(
            codes.contains(&"more.positive.small".to_string()),
            "{codes:?}"
        );
        assert!(codes.contains(&"more.mixed.small".to_string()), "{codes:?}");
        assert!(codes.len() > 6);
    }

    #[test]
    fn properties_accumulate_in_category_order() {
        let spec = parse_spec(
            "test t;
             category a; x : property P; y : ;
             category b; m : if P; n : if not P;",
        )
        .unwrap();
        let g = generate_frames(&spec, FrameGenOptions::default());
        let codes: Vec<String> = g.frames.iter().map(|f| f.code()).collect();
        assert_eq!(codes, vec!["x.m", "y.n"]);
    }

    #[test]
    fn empty_category_is_omitted() {
        let spec = parse_spec(
            "test t;
             category a; x : ;
             category b; m : if NEVER;",
        )
        .unwrap();
        let g = generate_frames(&spec, FrameGenOptions::default());
        assert_eq!(g.frames.len(), 1);
        assert_eq!(g.frames[0].code(), "x");
    }

    #[test]
    fn frame_display_matches_paper_notation() {
        let g = figure1();
        assert_eq!(g.frames[4].to_string(), "(more, mixed, large)");
    }

    #[test]
    fn by_code_round_trips() {
        let g = figure1();
        for f in &g.frames {
            assert_eq!(g.by_code(&f.code()).unwrap(), f);
        }
        assert!(g.by_code("no.such.frame").is_none());
    }
}
