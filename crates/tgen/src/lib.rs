//! # gadt-tgen
//!
//! T-GEN: the extended category-partition test generator of the GADT
//! reproduction (*Generalized Algorithmic Debugging and Testing*, PLDI
//! 1991, §2).
//!
//! T-GEN extends Ostrand & Balcer's category-partition method with test
//! scripts, result categories, executable test cases, and a test-report
//! database — the features that let the debugger answer queries from
//! recorded test results instead of asking the user (§5.3.2):
//!
//! * [`spec`] — the test-specification language (categories, choices,
//!   properties, selector expressions, scripts, result categories), with
//!   the paper's Figure 1 `arrsum` specification as a fixture;
//! * [`frames`] — test-frame generation, including the `SINGLE` property
//!   and the selector semantics that reproduce the paper's
//!   "`script_1` contains two frames" example;
//! * [`cases`] — executable test cases, the unit-test runner (isolated
//!   procedure execution), the test-report database keyed by coded
//!   frames, and the `arrsum` instantiator/classifier/oracle trio.
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gadt_tgen::{spec, frames, cases};
//! let s = spec::parse_spec(spec::ARRSUM_SPEC)?;
//! let g = frames::generate_frames(&s, Default::default());
//! assert_eq!(g.frames.len(), 6);
//! // Frames become executable test cases via an instantiator:
//! let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 10));
//! assert_eq!(tc.len(), 6);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cases;
pub mod frames;
pub mod menu;
pub mod spec;

pub use cases::{instantiate_cases, run_cases, TestCase, TestDb, TestReport};
pub use frames::{generate_frames, Frame, FrameGenOptions, GeneratedFrames};
pub use menu::select_frame;
pub use spec::{parse_spec, SelExpr, TestSpec};
