//! Cross-crate integration tests: every figure and worked example of the
//! paper, checked end to end through the public APIs (see DESIGN.md's
//! experiment index E1–E12).

use gadt::debugger::{DebugConfig, DebugResult};
use gadt::oracle::{Answer, ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt::testlookup::TestLookup;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
use gadt_pascal::cfg::lower;
use gadt_pascal::pretty::print_slice;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_tgen::{cases, frames, spec};

/// E1 — Figure 1: the frames and script grouping the paper reports.
#[test]
fn e1_figure1_frames_and_scripts() {
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let s1: Vec<String> = g.script("script_1").iter().map(|f| f.to_string()).collect();
    assert_eq!(s1, vec!["(more, mixed, large)", "(more, mixed, average)"]);
    let codes: Vec<String> = g.frames.iter().map(|f| f.code()).collect();
    assert_eq!(codes.len(), 6);
    assert!(codes.contains(&"zero.positive.small".to_string()));
}

/// E2 — Figure 2: the static slice on `mul`, as an executable program.
#[test]
fn e2_figure2_static_slice() {
    let m = compile(testprogs::FIGURE2).unwrap();
    let cfg = lower(&m);
    let cx = SliceContext::new(&m, &cfg);
    let crit = SliceCriterion::at_program_end(&m, "mul").unwrap();
    let slice = static_slice(&cx, &crit);
    let printed = print_slice(&m.program, &slice.stmts);
    for needed in ["read(x, y)", "mul := 0", "if x <= 1 then", "mul := x * y"] {
        assert!(printed.contains(needed), "missing {needed}:\n{printed}");
    }
    for dropped in ["sum", "read(z)"] {
        assert!(
            !printed.contains(dropped),
            "should drop {dropped}:\n{printed}"
        );
    }
    // The slice compiles and preserves mul on both branches.
    let sm = compile(&printed).unwrap();
    for input in [vec![0i64, 3], vec![4, 5, 6]] {
        let run = |m: &gadt_pascal::Module| {
            let mut i = gadt_pascal::interp::Interpreter::new(m);
            i.set_input(input.iter().map(|&n| gadt_pascal::value::Value::Int(n)));
            i.run().unwrap()
        };
        assert_eq!(run(&m).global("mul"), run(&sm).global("mul"));
    }
}

/// E3 — §3: pure algorithmic debugging localizes the P/Q/R bug in R.
#[test]
fn e3_pqr_session() {
    let buggy = compile(testprogs::PQR).unwrap();
    let fixed = compile(testprogs::PQR_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(
        &prepared,
        &run,
        &mut chain,
        DebugConfig {
            slicing: false,
            ..Default::default()
        },
    );
    assert!(matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "r"));
    // The paper's session: P? no, Q? yes, R? no.
    assert_eq!(out.total_queries(), 3);
    assert_eq!(
        out.transcript[0].answer,
        Answer::Incorrect {
            wrong_output: Some(1)
        }
    );
    assert_eq!(out.transcript[1].answer, Answer::Correct);
}

/// E4 — Figures 4+7: the execution tree with the paper's exact values.
#[test]
fn e4_figure7_tree() {
    let m = compile(testprogs::SQRTEST).unwrap();
    let prepared = prepare(&m).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let tm = &prepared.transformed.module;
    let rendered = run.tree.render(run.tree.root);
    for line in [
        "sqrtest(In ary: [1,2], In n: 2, Out isok: false)",
        "arrsum(In a: [1,2], In n: 2, Out b: 3)",
        "computs(In y: 3, Out r1: 12, Out r2: 9)",
        "comput1(In y: 3, Out r1: 12)",
        "comput2(In y: 3, Out r2: 9)",
        "partialsums(In y: 3, Out s1: 6, Out s2: 6)",
        "add(In s1: 6, In s2: 6, Out r1: 12)",
        "square(In y: 3, Out r2: 9)",
        "sum1(In y: 3, Out s1: 6)",
        "sum2(In y: 3, Out s2: 6)",
        "increment(In y: 3) = 4",
        "decrement(In y: 3) = 4",
        "test(In r1: 12, In r2: 9, Out isok: false)",
    ] {
        assert!(rendered.contains(line), "missing {line} in:\n{rendered}");
    }
    let _ = tm;
}

/// E5/E6 — Figures 8 and 9: the pruned trees.
#[test]
fn e5_e6_pruned_trees() {
    let m = compile(testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    let trace = gadt_analysis::dyntrace::record_trace(&m, &cfg, []).unwrap();
    let tree = gadt_trace::build_tree(&m, &trace);

    let call_of = |name: &str| {
        trace
            .calls
            .iter()
            .find(|c| m.proc(c.proc).name == name)
            .unwrap()
            .id
    };
    let names_of = |t: &gadt_trace::ExecTree| -> Vec<String> {
        t.preorder()
            .into_iter()
            .map(|n| t.node(n).name.clone())
            .collect()
    };

    let s8 = dynamic_slice_output(&m, &trace, call_of("computs"), 0);
    let fig8 = tree.prune(tree.find_call(&m, "computs").unwrap(), &s8);
    assert_eq!(
        names_of(&fig8),
        vec![
            "computs",
            "comput1",
            "partialsums",
            "sum1",
            "increment",
            "sum2",
            "decrement",
            "add"
        ]
    );

    let s9 = dynamic_slice_output(&m, &trace, call_of("partialsums"), 1);
    let fig9 = tree.prune(tree.find_call(&m, "partialsums").unwrap(), &s9);
    assert_eq!(names_of(&fig9), vec!["partialsums", "sum2", "decrement"]);
}

/// E7 — §8: the full GADT session, with the arrsum query answered by the
/// test database, two slices, and the bug in decrement.
#[test]
fn e7_full_gadt_session() {
    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();

    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let db = cases::run_cases(&buggy, "arrsum", &tc, &|i, r| cases::arrsum_oracle(i, r)).unwrap();
    let mut lookup = TestLookup::new();
    lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));

    let mut chain = ChainOracle::new();
    chain.push(lookup);
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());

    assert!(matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"));
    assert_eq!(out.slices_taken, 2);
    assert_eq!(out.queries_from("test database"), 1);
    assert_eq!(out.queries_from("reference"), 6);

    // Pure AD on the same tree asks strictly more user questions.
    let mut pure = ChainOracle::new();
    pure.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out_pure = debug(
        &prepared,
        &run,
        &mut pure,
        DebugConfig {
            slicing: false,
            ..Default::default()
        },
    );
    assert!(out_pure.queries_from("reference") > out.queries_from("reference"));
}

/// E13 — the §8 session across *processes*: session 1 answers from the
/// test database and the simulated user, persisting every judgement
/// (and the test database itself) into a knowledge store; session 2
/// reopens the store cold and replays the identical session without a
/// single user question — all seven queries answered from disk — and
/// without writing a single new byte.
#[test]
fn e13_cross_session_store_replay_asks_zero_user_questions() {
    use gadt::StoredKnowledgeOracle;
    use gadt_store::{KnowledgeStore, TempDir};
    use gadt_tgen::cases::TestDb;

    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();

    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let db = cases::run_cases(&buggy, "arrsum", &tc, &|i, r| cases::arrsum_oracle(i, r)).unwrap();

    let dir = TempDir::new("e13-session");

    // Session 1 — live sources answer; every judgement lands on disk.
    let fp_after_first = {
        let store = KnowledgeStore::open(dir.path()).unwrap().into_shared();
        db.persist(&mut store.lock().unwrap()).unwrap();
        let mut lookup = TestLookup::new();
        lookup.register("arrsum", db.clone(), Box::new(cases::arrsum_frame_selector));
        let mut chain = ChainOracle::new();
        chain.push(lookup);
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        chain.persist_answers_to(store.clone());
        let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
        assert!(
            matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement")
        );
        assert_eq!(out.total_queries(), 7);
        let mut guard = store.lock().unwrap();
        assert!(chain.take_persist_error().is_none());
        assert_eq!(guard.answers_len(), 7);
        guard.sync().unwrap();
        guard.disk_fingerprint().unwrap()
    };

    // Session 2 — a cold open; the stored answers (and the reloaded
    // test database behind them) answer everything.
    let store = KnowledgeStore::open(dir.path()).unwrap().into_shared();
    let db2 = TestDb::load_from(&store.lock().unwrap(), "arrsum");
    assert_eq!(db2, db, "the test database survives the round trip");
    let mut lookup = TestLookup::new();
    lookup.register("arrsum", db2, Box::new(cases::arrsum_frame_selector));
    let mut chain = ChainOracle::new();
    chain.push(lookup);
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    chain.push_front(StoredKnowledgeOracle::new(store.clone()));
    chain.persist_answers_to(store.clone());
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());

    assert!(matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"));
    assert_eq!(out.slices_taken, 2);
    assert_eq!(out.total_queries(), 7);
    assert_eq!(
        out.queries_from("reference"),
        0,
        "the user was consulted on replay:\n{}",
        out.render_transcript()
    );
    for entry in &out.transcript {
        assert!(
            entry.source == gadt::STORED_SOURCE || entry.source == "test database",
            "query answered live on replay: {} [{}]",
            entry.query,
            entry.source
        );
    }

    // Replay is read-only: not one byte changed on disk.
    let mut guard = store.lock().unwrap();
    assert!(chain.take_persist_error().is_none());
    guard.sync().unwrap();
    assert_eq!(guard.disk_fingerprint().unwrap(), fp_after_first);
    assert_eq!(guard.answer_misses(), 0, "every lookup should hit");
}

/// E11 — §6: each transformation example preserves semantics and removes
/// the targeted construct.
#[test]
fn e11_transformations() {
    use gadt_transform::transform;
    for (name, src) in [
        ("globals", testprogs::SECTION6_GLOBALS),
        ("goto", testprogs::SECTION6_GOTO),
        ("loop_goto", testprogs::SECTION6_LOOP_GOTO),
    ] {
        let m = compile(src).unwrap();
        let t = transform(&m).unwrap();
        let o1 = gadt_pascal::interp::Interpreter::new(&m).run().unwrap();
        let o2 = gadt_pascal::interp::Interpreter::new(&t.module)
            .run()
            .unwrap();
        assert_eq!(o1.output_text(), o2.output_text(), "{name}");
        // No global gotos remain.
        for (stmt, (owner, _)) in &t.module.goto_res {
            assert_eq!(
                t.module.proc_of_stmt[stmt], *owner,
                "{name}: global goto left"
            );
        }
        // No procedure-level variable side effects remain.
        let cfg = lower(&t.module);
        let (_cg, fx) = gadt_analysis::effects::analyze(&t.module, &cfg);
        for p in &t.module.procs {
            if p.id != gadt_pascal::sema::MAIN_PROC {
                assert!(
                    !fx.has_global_side_effects(p.id),
                    "{name}: {} dirty",
                    p.name
                );
            }
        }
    }
}

/// E12 — §5.3.3: a misnamed variable in an argument is localized to the
/// calling procedure once all subcomputations check out.
#[test]
fn e12_misnamed_variable() {
    let src = "program t; var r: integer;
         procedure f(x: integer; var y: integer); begin y := x * 2 end;
         procedure caller(var r: integer);
         var a, b: integer;
         begin a := 1; b := 99; f(b, r) end;
         begin caller(r); writeln(r) end.";
    let fixed_src = src.replace("f(b, r)", "f(a, r)");
    let buggy = compile(src).unwrap();
    let fixed = compile(&fixed_src).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
    assert!(
        matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "caller"),
        "{}",
        out.render_transcript()
    );
}

/// Golden transcript — the §3 P/Q/R session, pinned verbatim. Any change
/// to traversal order, question wording, or answer attribution fails here
/// loudly instead of silently drifting from the paper.
#[test]
fn golden_transcript_pqr_session() {
    let buggy = compile(testprogs::PQR).unwrap();
    let fixed = compile(testprogs::PQR_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(
        &prepared,
        &run,
        &mut chain,
        DebugConfig {
            slicing: false,
            ..Default::default()
        },
    );
    let expected = "\
p(In a: 5, In c: 7, Out b: 10, Out d: 10)?
> no, error on output variable 2    [simulated user (reference implementation)]
q(In a: 5, Out b: 10)?
> yes    [simulated user (reference implementation)]
r(In c: 7, Out d: 10)?
> no, error on output variable 1    [simulated user (reference implementation)]
An error is localized inside the body of r.";
    assert_eq!(out.render_transcript().trim_end(), expected);
}

/// Golden transcript — the §8 slicing-pruned SQRTEST session, pinned
/// verbatim: seven questions straight down the pruned spine to
/// `decrement`, exactly the paper's walkthrough.
#[test]
fn golden_transcript_sqrtest_sliced_session() {
    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
    let expected = "\
sqrtest(In ary: [1,2], In n: 2, Out isok: false)?
> no, error on output variable 1    [simulated user (reference implementation)]
arrsum(In a: [1,2], In n: 2, Out b: 3)?
> yes    [simulated user (reference implementation)]
computs(In y: 3, Out r1: 12, Out r2: 9)?
> no, error on output variable 1    [simulated user (reference implementation)]
comput1(In y: 3, Out r1: 12)?
> no, error on output variable 1    [simulated user (reference implementation)]
partialsums(In y: 3, Out s1: 6, Out s2: 6)?
> no, error on output variable 2    [simulated user (reference implementation)]
sum2(In y: 3, Out s2: 6)?
> no, error on output variable 1    [simulated user (reference implementation)]
decrement(In y: 3) = 4?
> no, error on output variable 1    [simulated user (reference implementation)]
An error is localized inside the body of decrement.";
    assert_eq!(out.render_transcript().trim_end(), expected);
}

/// Golden transcript — the §8 session under Shapiro's divide-and-query.
/// Bisection skips the spine walk: four questions (vs top-down's seven)
/// land on `decrement`, and the pruned tree needs only one slice.
#[test]
fn golden_transcript_sqrtest_divide_and_query() {
    use gadt::debugger::Strategy;
    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(
        &prepared,
        &run,
        &mut chain,
        DebugConfig {
            strategy: Strategy::DivideAndQuery,
            ..Default::default()
        },
    );
    let expected = "\
comput1(In y: 3, Out r1: 12)?
> no, error on output variable 1    [simulated user (reference implementation)]
partialsums(In y: 3, Out s1: 6, Out s2: 6)?
> no, error on output variable 2    [simulated user (reference implementation)]
sum2(In y: 3, Out s2: 6)?
> no, error on output variable 1    [simulated user (reference implementation)]
decrement(In y: 3) = 4?
> no, error on output variable 1    [simulated user (reference implementation)]
An error is localized inside the body of decrement.";
    assert_eq!(out.render_transcript().trim_end(), expected);
    assert_eq!(out.total_queries(), 4);
    assert_eq!(out.slices_taken, 1);
}

/// Golden transcript — the §8 session under optimal divide-and-query
/// (Insa & Silva). The minimax split asks `sum1` where Shapiro descends
/// through `partialsums`, converging in four questions with no slice.
#[test]
fn golden_transcript_sqrtest_dq_opt() {
    use gadt::debugger::Strategy;
    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(
        &prepared,
        &run,
        &mut chain,
        DebugConfig {
            strategy: Strategy::DqOpt,
            ..Default::default()
        },
    );
    let expected = "\
comput1(In y: 3, Out r1: 12)?
> no, error on output variable 1    [simulated user (reference implementation)]
sum1(In y: 3, Out s1: 6)?
> yes    [simulated user (reference implementation)]
sum2(In y: 3, Out s2: 6)?
> no, error on output variable 1    [simulated user (reference implementation)]
decrement(In y: 3) = 4?
> no, error on output variable 1    [simulated user (reference implementation)]
An error is localized inside the body of decrement.";
    assert_eq!(out.render_transcript().trim_end(), expected);
    assert_eq!(out.total_queries(), 4);
    assert_eq!(out.slices_taken, 0);
}

/// Question-count ordering on the §8 session: optimal divide-and-query
/// never asks more than Shapiro's, which never asks more than top-down's
/// seven-question spine walk. All strategies agree on the verdict.
#[test]
fn strategy_question_counts_ordered_on_section8_session() {
    use gadt::debugger::Strategy;
    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut counts = std::collections::BTreeMap::new();
    for strategy in Strategy::ALL {
        let mut chain = ChainOracle::new();
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        let out = debug(
            &prepared,
            &run,
            &mut chain,
            DebugConfig {
                strategy,
                ..Default::default()
            },
        );
        assert!(
            matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"),
            "{} disagrees on the verdict:\n{}",
            strategy.slug(),
            out.render_transcript()
        );
        counts.insert(strategy.slug(), out.total_queries());
    }
    assert_eq!(counts["top_down"], 7);
    assert!(counts["dq_opt"] <= counts["divide_and_query"]);
    assert!(counts["divide_and_query"] <= counts["top_down"]);
    // Without a knowledge store attached there is no probe, and the
    // knowledge-weighted strategy degenerates to optimal D&Q exactly.
    assert_eq!(counts["knowledge_weighted"], counts["dq_opt"]);
}

/// E14 — stored-knowledge replay under the knowledge-weighted strategy:
/// a top-down session persists its seven judgements; on replay, optimal
/// D&Q bisects into `sum1` (never stored) and must ask the user once,
/// while the knowledge-weighted strategy steers every question onto a
/// stored answer and asks the user nothing.
#[test]
fn e14_knowledge_weighted_replay_asks_strictly_fewer_live_questions() {
    use gadt::debugger::Strategy;
    use gadt::session::debug_observed_with_probe;
    use gadt::{AnswerProbe, StoreProbe, StoredKnowledgeOracle};
    use gadt_obs::Recorder;
    use gadt_store::{KnowledgeStore, TempDir};

    let buggy = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let dir = TempDir::new("e14-replay");
    let store = KnowledgeStore::open(dir.path()).unwrap().into_shared();

    // Session 1 — top-down, live user; all seven judgements persist.
    {
        let mut chain = ChainOracle::new();
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        chain.persist_answers_to(store.clone());
        let out = debug(&prepared, &run, &mut chain, DebugConfig::default());
        assert_eq!(out.total_queries(), 7);
        assert!(chain.take_persist_error().is_none());
    }

    // Session 2 — replay each bisection strategy against the seeded store.
    let mut live = std::collections::BTreeMap::new();
    for strategy in [Strategy::DqOpt, Strategy::KnowledgeWeighted] {
        let mut chain = ChainOracle::new();
        chain.push(CountingOracle::new(
            ReferenceOracle::new(&fixed, []).unwrap(),
        ));
        chain.push_front(StoredKnowledgeOracle::new(store.clone()));
        let probe = (strategy == Strategy::KnowledgeWeighted)
            .then(|| Box::new(StoreProbe::new(store.clone())) as Box<dyn AnswerProbe>);
        let out = debug_observed_with_probe(
            &prepared,
            &run,
            &mut chain,
            DebugConfig {
                strategy,
                ..Default::default()
            },
            probe,
            &mut Recorder::disabled(),
        );
        assert!(
            matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"),
            "{} replay verdict drifted:\n{}",
            strategy.slug(),
            out.render_transcript()
        );
        live.insert(strategy.slug(), out.queries_from("reference"));
    }
    assert_eq!(live["dq_opt"], 1, "optimal D&Q bisects into unstored sum1");
    assert_eq!(
        live["knowledge_weighted"], 0,
        "every question hits the store"
    );
    assert!(live["knowledge_weighted"] < live["dq_opt"]);
}
