{ Regression: a fired goto steers control but defines nothing, so no
  dependence ever reaches it and the slice dropped the "goto 1" that
  exits the for loop during its first iteration. The replayed slice ran
  the loop to completion, leaving the control variable at -1 instead of
  the full run's 1. Found by differential fuzzing (seeds 89/160); fixed
  by seeding the replay closure with every goto and label statement -
  their guards join through the structural rule and replay with original
  values, so gotos that never fired stay dormant. }
program gotofor;
label 1;
var
  g0, g1, i0: integer;
begin
  for i0 := g0 + 1 downto g0 do
    begin
      if g1 < 1 then
        goto 1
    end;
  1:
  writeln(i0)
end.
