{ Regression: a repeat body's first iteration executes unconditionally,
  so the final write to f0 has no control dependence and the repeat
  statement itself never joins the dynamic slice - yet the printed slice
  still re-emits the until condition, which then read a sliced-away
  g0 (zero instead of 70), looped to exhaustion, and replayed f0 = 0
  instead of 2. Fixed by the replay closure's structural rule: every
  loop/branch enclosing a kept statement joins the slice, pulling the
  condition's data dependences (g0 := 70) along. }
program fuelrepeat;
var
  g0, f0: integer;
begin
  g0 := 70;
  f0 := 3;
  repeat
    f0 := f0 - 1
  until (f0 <= 0) or (g0 > 65);
  writeln(f0)
end.
