{ Regression: termination-insensitivity of the classic dynamic slice.
  The final write to g0 happens in iteration 1; iterations 2-3 only burn
  fuel, so no later event is a dependence ancestor of the criterion and
  the slice correctly drops "f0 := f0 - 1" — for localization. But the
  printed slice keeps the while loop with its original exit condition,
  and replaying it without the decrement never terminates. Found by
  differential fuzzing (16 seeds); fixed by the replay closure
  (close_for_replay), which closes over all instances of kept statements. }
program fuelwhile;
var
  g0, g1, f0: integer;
begin
  f0 := 3;
  while (f0 > 0) and (g1 < 9) do
    begin
      f0 := f0 - 1;
      if g1 = 0 then
        begin
          g0 := 55;
          g1 := 1
        end
    end;
  writeln(g0)
end.
