{ Regression: the pretty-printer emitted unary minus without parentheses
  in argument position ("2 + -g0"), which is not ISO Pascal — a sign may
  bind only the whole leading term of a simple expression — so printed
  slices failed to recompile; and "-a * b" re-parsed as "-(a * b)",
  silently changing the value. Found by differential fuzzing (16 seeds). }
program negparens;
var
  g0, g1, g2: integer;
begin
  g0 := 3;
  g1 := (2 + (-g0)) * ((-g0) + 7);
  g2 := (-(g0 + 1)) * 5 - (-2);
  writeln(g1);
  writeln(g2)
end.
