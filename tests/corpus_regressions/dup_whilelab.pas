{ Regression: break_loop_gotos minted leave/whilelab names from a counter
  that restarted at zero on every call. The goto phases alternate to a
  fixpoint, and phase C's exit dispatch ("if exitcond_p1 = 1 then goto 2"
  after a call site inside a loop) hands phase B a fresh loop-exit goto on
  the next round — which then re-minted whilelab_1 in a procedure that
  already declared it, and re-analysis failed with a duplicate label.
  Found by differential fuzzing (6 seeds). The counter now seeds itself
  past every existing leave/whilelab name in the block. }
program dupwhilelab;
label 1;
var
  g0, g1: integer;
procedure p0(d: integer);
label 2;
var
  f0: integer;
  procedure p1(d: integer);
  begin
    if d > 0 then
      goto 2
  end;
begin
  f0 := 3;
  while f0 > 0 do
    begin
      f0 := f0 - 1;
      g0 := g0 + 2;
      if g0 > 5 then
        goto 2;
      p1(d)
    end;
  2:
  g1 := g1 + 1
end;
begin
  p0(1);
  writeln(g0);
  writeln(g1);
  1:
  begin end
end.
