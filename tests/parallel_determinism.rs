//! Determinism harness for the parallel batch engine: every parallel
//! entry point must produce byte-identical results to its sequential
//! counterpart at any thread count. Thread counts 1, 2 and 8 cover the
//! inline fast path, minimal contention, and more workers than cores.

use gadt::session::{prepare, run_traced, run_traced_batch, trace_batch, Engine};
use gadt_analysis::dyntrace::record_trace;
use gadt_analysis::slice_batch::dynamic_slice_batch;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_bench::genprog::{generate, GenConfig};
use gadt_pascal::cfg::lower;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_tgen::{cases, frames, spec};

const THREADS: [usize; 3] = [1, 2, 8];

#[test]
fn tgen_case_runs_are_thread_count_invariant() {
    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let oracle = |ins: &[Value], r: &gadt_pascal::interp::ProcRun| cases::arrsum_oracle(ins, r);
    let seq = cases::run_cases(&m, "arrsum", &tc, &oracle).unwrap();
    for threads in THREADS {
        let par = cases::run_cases_batch(threads, &m, "arrsum", &tc, &oracle).unwrap();
        assert_eq!(seq, par, "TestDb diverges at {threads} threads");
    }
    // Engine axis: the bytecode VM builds the identical database at
    // every thread count.
    for threads in THREADS {
        let vm =
            cases::run_cases_batch_on(Engine::Vm, threads, &m, "arrsum", &tc, &oracle).unwrap();
        assert_eq!(seq, vm, "VM TestDb diverges at {threads} threads");
    }
}

/// The knowledge store is byte-deterministic under parallel writers:
/// T-GEN batch persistence and a store-backed mutation campaign funnel
/// through the serialized appender, so the on-disk fingerprint is
/// identical at every thread count.
#[test]
fn knowledge_store_bytes_are_thread_count_invariant() {
    use gadt_mutate::{run_campaign_with_store, CampaignConfig, CampaignProgram};
    use gadt_store::{KnowledgeStore, TempDir};

    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let oracle = |ins: &[Value], r: &gadt_pascal::interp::ProcRun| cases::arrsum_oracle(ins, r);
    let programs = vec![CampaignProgram::new("pqr", testprogs::PQR_FIXED)];

    let mut fingerprints = Vec::new();
    for threads in THREADS {
        let dir = TempDir::new("det-store");
        let shared = KnowledgeStore::open(dir.path()).unwrap().into_shared();
        cases::run_cases_batch_persisted(threads, &m, "arrsum", &tc, &oracle, &shared).unwrap();
        let config = CampaignConfig {
            max_mutants: 6,
            threads,
            ..Default::default()
        };
        run_campaign_with_store(&programs, &config, &shared).unwrap();
        let mut guard = shared.lock().unwrap();
        guard.sync().unwrap();
        fingerprints.push((guard.disk_fingerprint().unwrap(), guard.wal_records()));
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "store bytes diverge at 2 threads"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "store bytes diverge at 8 threads"
    );
}

#[test]
fn slice_batch_matches_per_criterion_slicing() {
    let gp = generate(&GenConfig {
        procs: 8,
        max_calls: 2,
        seed: 5,
    });
    let m = compile(&gp.source).unwrap();
    let cfg = lower(&m);
    let trace = record_trace(&m, &cfg, []).unwrap();
    let criteria: Vec<(u64, usize)> = trace
        .calls
        .iter()
        .flat_map(|c| (0..c.outs.len()).map(move |k| (c.id, k)))
        .collect();
    assert!(criteria.len() > 2, "need a multi-criterion workload");
    let seq: Vec<_> = criteria
        .iter()
        .map(|&(c, k)| dynamic_slice_output(&m, &trace, c, k))
        .collect();
    for threads in THREADS {
        let (par, cache) = dynamic_slice_batch(&m, &trace, &criteria, threads);
        assert_eq!(par.len(), seq.len());
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(
                s,
                p.as_ref(),
                "criterion {:?} diverges at {threads} threads",
                criteria[i]
            );
        }
        assert_eq!(cache.len(), criteria.len(), "all criteria unique here");
    }
}

#[test]
fn batch_tracing_matches_sequential_tracing() {
    let src = "program t; var n, i, s: integer;
         procedure step(x: integer; var acc: integer);
         begin acc := acc + x * x end;
         begin read(n); s := 0; for i := 1 to n do step(i, s); writeln(s) end.";
    let m = compile(src).unwrap();
    let prepared = prepare(&m).unwrap();
    let inputs: Vec<Vec<Value>> = (1..=12).map(|n| vec![Value::Int(n)]).collect();
    let seq: Vec<_> = inputs
        .iter()
        .map(|i| run_traced(&prepared, i.clone()).unwrap())
        .collect();
    for threads in THREADS {
        let par = run_traced_batch(&prepared, inputs.clone(), threads).unwrap();
        assert_eq!(par.len(), seq.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.output, p.output);
            assert_eq!(s.trace.events.len(), p.trace.events.len());
            assert_eq!(s.tree.render(s.tree.root), p.tree.render(p.tree.root));
        }
    }
    // Engine axis: the same batch on the shared compiled bytecode must
    // reproduce the tree-walker's sequential traces at any thread count.
    let vm_prepared = prepare(&m).unwrap().with_engine(Engine::Vm);
    for threads in THREADS {
        let par = run_traced_batch(&vm_prepared, inputs.clone(), threads).unwrap();
        assert_eq!(par.len(), seq.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(
                s.output, p.output,
                "VM output diverges at {threads} threads"
            );
            assert_eq!(s.trace.events.len(), p.trace.events.len());
            assert_eq!(s.tree.render(s.tree.root), p.tree.render(p.tree.root));
        }
    }
}

#[test]
fn trace_batch_reports_timings_and_matches_sequential() {
    let m = compile(
        "program t; var n, r: integer;
         function sq(x: integer): integer; begin sq := x * x end;
         begin read(n); r := sq(n); writeln(r) end.",
    )
    .unwrap();
    let inputs: Vec<Vec<Value>> = (1..=6).map(|n| vec![Value::Int(n)]).collect();
    let batch = trace_batch(&m, inputs.clone(), 2).unwrap();
    assert_eq!(batch.runs.len(), inputs.len());
    let prepared = prepare(&m).unwrap();
    for (i, input) in inputs.iter().enumerate() {
        let seq = run_traced(&prepared, input.clone()).unwrap();
        assert_eq!(seq.output, batch.runs[i].output);
    }
    assert!(batch.timings.total() > std::time::Duration::ZERO);
}
