//! Engine-conformance suite: every curated paper fixture plus every
//! committed corpus-regression reproducer must behave identically on
//! the tree-walking interpreter and the bytecode VM — program output,
//! monitor-event streams, execution trees, dynamic-slice results, and
//! isolated procedure runs are all compared byte for byte.

use gadt::session::{self, Engine};
use gadt_analysis::{dynamic_slice_final, dynamic_slice_output};
use gadt_pascal::cfg::lower;
use gadt_pascal::interp::Interpreter;
use gadt_pascal::sema::{compile, Module, VarKind, MAIN_PROC};
use gadt_pascal::testprogs;
use gadt_pascal::types::Type;
use gadt_pascal::value::Value;
use gadt_vm::conformance::EventLog;
use gadt_vm::{CallSemantics, PreparedEngine};

/// Shared input queue: enough values to satisfy any fixture's `read`s;
/// both engines always see the same stream.
fn input() -> Vec<Value> {
    [3, 5, 2, 7, 1, 4, 6, 8].map(Value::Int).to_vec()
}

/// All conformance subjects: the curated fixtures in
/// `gadt_pascal::testprogs::ALL` plus every minimized divergence
/// reproducer committed under `tests/corpus_regressions/`.
fn subjects() -> Vec<(String, String)> {
    let mut subs: Vec<(String, String)> = testprogs::ALL
        .iter()
        .map(|(n, s)| ((*n).to_string(), (*s).to_string()))
        .collect();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_regressions");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus_regressions must exist")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "pas"))
        .collect();
    paths.sort();
    for p in paths {
        let name = p
            .file_stem()
            .expect("file stem")
            .to_string_lossy()
            .into_owned();
        let src = std::fs::read_to_string(&p).expect("readable reproducer");
        subs.push((name, src));
    }
    assert!(subs.len() >= 15, "only {} subjects", subs.len());
    subs
}

/// Session-level conformance: tracing through the full prepare → trace
/// pipeline on either engine yields the same output, the same recorded
/// event stream, the same execution tree, and the same dynamic slices
/// for every global's final value and every call's output.
#[test]
fn traced_runs_and_slices_are_engine_identical() {
    let mut checked_slices = 0usize;
    for (name, src) in subjects() {
        let module = compile(&src).expect(&name);
        let tree = session::prepare(&module).expect(&name);
        let vm = session::prepare(&module)
            .expect(&name)
            .with_engine(Engine::Vm);
        assert_eq!(vm.engine().name(), "vm");

        let t = session::run_traced(&tree, input()).expect(&name);
        let v = session::run_traced(&vm, input()).expect(&name);
        assert_eq!(t.output, v.output, "{name}: output");
        assert_eq!(
            format!("{:?}", t.trace.events),
            format!("{:?}", v.trace.events),
            "{name}: trace events"
        );
        assert_eq!(
            t.tree.render(t.tree.root),
            v.tree.render(v.tree.root),
            "{name}: execution tree"
        );

        let tm = &tree.transformed.module;
        let vym = &vm.transformed.module;
        let globals: Vec<String> = tm
            .vars_of(MAIN_PROC)
            .filter(|var| var.kind == VarKind::Global)
            .map(|var| var.name.clone())
            .collect();
        for g in globals {
            let a = dynamic_slice_final(tm, &t.trace, &g);
            let b = dynamic_slice_final(vym, &v.trace, &g);
            assert_eq!(a, b, "{name}: final-value slice of `{g}`");
            checked_slices += 1;
        }
        for c in &t.trace.calls {
            for k in 0..c.outs.len() {
                let a = dynamic_slice_output(tm, &t.trace, c.id, k);
                let b = dynamic_slice_output(vym, &v.trace, c.id, k);
                assert_eq!(a, b, "{name}: output slice ({}, {k})", c.id);
                checked_slices += 1;
            }
        }
    }
    assert!(checked_slices > 30, "only {checked_slices} slices compared");
}

fn sample_args(module: &Module, params: &[gadt_pascal::sema::VarId]) -> Vec<Value> {
    params
        .iter()
        .enumerate()
        .map(|(i, &p)| match &module.var(p).ty {
            Type::Integer => Value::Int(i as i64 + 2),
            Type::Real => Value::Real(1.5),
            Type::Boolean => Value::Bool(true),
            ty => Value::zero_of(ty),
        })
        .collect()
}

/// Isolated-procedure conformance (the T-GEN execution path): every
/// top-level procedure of every subject runs on both engines with the
/// same sampled arguments, and the event streams plus the `ProcRun`
/// results (or the error messages) must match exactly.
#[test]
fn isolated_procedure_runs_are_engine_identical() {
    let mut covered = 0usize;
    for (name, src) in subjects() {
        let module = compile(&src).expect(&name);
        let cfg = lower(&module);
        let engine = PreparedEngine::new(&module, &cfg, Engine::Vm);
        for info in &module.procs {
            if info.id == MAIN_PROC || info.parent != Some(MAIN_PROC) {
                continue;
            }
            let args = sample_args(&module, &info.params);

            let mut tree_log = EventLog::new();
            let mut interp = Interpreter::with_cfg(&module, cfg.clone());
            let tree_run = interp.run_proc_with(info.id, args.clone(), &mut tree_log);

            let mut vm_log = EventLog::new();
            let vm_run = engine.run_proc_with(
                info.id,
                args,
                gadt_pascal::interp::Limits::default(),
                &mut vm_log,
            );

            assert_eq!(
                tree_log.events, vm_log.events,
                "{name}: events of run_proc {}",
                info.name
            );
            match (&tree_run, &vm_run) {
                (Ok(t), Ok(v)) => assert_eq!(
                    format!("{t:?}"),
                    format!("{v:?}"),
                    "{name}: ProcRun of {}",
                    info.name
                ),
                (Err(t), Err(v)) => assert_eq!(
                    t.to_string(),
                    v.to_string(),
                    "{name}: error of {}",
                    info.name
                ),
                _ => panic!(
                    "{name}: outcome kind of {} diverges: tree {tree_run:?} vs vm {vm_run:?}",
                    info.name
                ),
            }
            covered += 1;
        }
    }
    assert!(covered > 20, "only {covered} procedures covered");
}
