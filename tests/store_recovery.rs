//! Crash-recovery fault injection for the knowledge store: the WAL is
//! truncated at every byte offset and bombarded with random interior
//! corruption (seeded LCG — no external crates), and every case must
//! recover the valid prefix without panicking, heal the file, and
//! report exactly what it kept and dropped. A final test pins that
//! recovery behaviour is independent of the thread count that built
//! the store.

use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_pascal::value::Value;
use gadt_store::{obj, Json, KnowledgeStore, StoredAnswer, StoredReport, TempDir};
use gadt_tgen::{cases, frames, spec};
use std::io;
use std::path::Path;

const WAL: &str = "wal.jsonl";

/// A deterministic LCG (Knuth's MMIX constants) standing in for `rand`.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn report(code: &str, n: i64, passed: bool) -> StoredReport {
    StoredReport {
        unit: "arrsum".into(),
        code: code.into(),
        inputs: vec![Value::Int(n), Value::Real(0.5 * n as f64)],
        outputs: vec![Value::Int(n * 2)],
        passed,
    }
}

/// Populates a store with a representative record mix and returns the
/// pristine WAL bytes.
fn seed_store(dir: &Path) -> Vec<u8> {
    let mut store = KnowledgeStore::open(dir).unwrap();
    for (i, code) in [
        "zero.mixed.small",
        "more.positive.large",
        "one.negative.small",
    ]
    .iter()
    .enumerate()
    {
        store
            .append_report(report(code, i as i64 + 1, i % 2 == 0))
            .unwrap();
    }
    store
        .record_answer("p", &[Value::Int(5)], StoredAnswer::Correct, "user")
        .unwrap();
    store
        .record_answer(
            "decrement",
            &[Value::Int(3)],
            StoredAnswer::Incorrect {
                wrong_output: Some(0),
            },
            "simulated user (reference implementation)",
        )
        .unwrap();
    store
        .record_verdict(
            "campaign/pqr/00c0ffee/relop#0@r",
            obj(vec![
                ("s", Json::Str("localized".into())),
                ("unit", Json::Str("r".into())),
            ]),
        )
        .unwrap();
    store.sync().unwrap();
    drop(store);
    std::fs::read(dir.join(WAL)).unwrap()
}

/// Byte offsets one past each complete line (including its newline).
fn line_ends(bytes: &[u8]) -> Vec<usize> {
    bytes
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect()
}

/// Truncating the WAL at *every* byte offset — not just within the last
/// record — always recovers exactly the complete lines before the cut,
/// truncates the partial tail away, and leaves a cleanly appendable
/// file. The counts in the recovery report match the cut arithmetic
/// exactly.
#[test]
fn truncation_at_every_byte_offset_recovers_the_valid_prefix() {
    let dir = TempDir::new("store-truncate");
    let pristine = seed_store(dir.path());
    let ends = line_ends(&pristine);
    assert_eq!(ends.len(), 7, "header + six data records");
    let wal_path = dir.path().join(WAL);

    for cut in 0..pristine.len() {
        std::fs::write(&wal_path, &pristine[..cut]).unwrap();

        let store = KnowledgeStore::open(dir.path()).unwrap();
        let complete = ends.iter().filter(|&&e| e <= cut).count();
        let prefix_end = ends.iter().rev().find(|&&e| e <= cut).copied().unwrap_or(0);
        let rec = store.recovery();
        assert_eq!(
            rec.wal_records,
            complete.saturating_sub(1),
            "cut at {cut}: wrong record count"
        );
        assert_eq!(rec.dropped_bytes, cut - prefix_end, "cut at {cut}");
        assert_eq!(
            rec.dropped_lines,
            usize::from(cut > prefix_end),
            "cut at {cut}"
        );
        assert_eq!(rec.recovered_lines(), rec.wal_records);

        // The file healed to its valid prefix (or a fresh header when
        // even the header was cut short).
        let healed = std::fs::read(&wal_path).unwrap();
        if prefix_end > 0 {
            assert_eq!(healed, &pristine[..prefix_end], "cut at {cut}");
        } else {
            assert_eq!(healed, &pristine[..ends[0]], "cut at {cut}: fresh header");
        }
        drop(store);

        // Appending after recovery extends a clean file.
        let mut store = KnowledgeStore::open(dir.path()).unwrap();
        assert!(store.recovery().clean(), "cut at {cut}: reopen not clean");
        store
            .append_report(report("post.crash.case", 99, true))
            .unwrap();
        store.sync().unwrap();
        drop(store);
        let store = KnowledgeStore::open(dir.path()).unwrap();
        assert!(store.recovery().clean());
        assert!(store
            .unit_reports("arrsum")
            .any(|r| r.code == "post.crash.case"));
    }
}

/// Random interior corruption (1–4 flipped bytes per trial, seeded LCG)
/// never panics: recovery either keeps a valid prefix and heals the
/// file — so a reopen is clean and reproduces the same state — or, in
/// the rare case corruption forges a *newer* version header, refuses
/// the file with `InvalidData` instead of guessing.
#[test]
fn random_interior_corruption_never_panics_and_heals() {
    let dir = TempDir::new("store-corrupt");
    let pristine = seed_store(dir.path());
    let wal_path = dir.path().join(WAL);
    let mut rng = Lcg(0x6ad7_5ecc_a11e_d0c5);

    for trial in 0..300 {
        let mut bytes = pristine.clone();
        for _ in 0..=rng.below(3) {
            let pos = rng.below(bytes.len());
            bytes[pos] = (rng.next() & 0xFF) as u8;
        }
        std::fs::write(&wal_path, &bytes).unwrap();

        match KnowledgeStore::open(dir.path()) {
            Ok(store) => {
                let rec = *store.recovery();
                assert!(
                    rec.wal_records <= 6,
                    "trial {trial}: recovered more than was ever written"
                );
                // dropped_bytes accounts for everything past the valid
                // prefix; an empty prefix is healed to a fresh header.
                let healed_len = std::fs::read(&wal_path).unwrap().len();
                let valid_len = bytes.len() - rec.dropped_bytes;
                let header_len = line_ends(&pristine)[0];
                assert_eq!(
                    healed_len,
                    if valid_len == 0 {
                        header_len
                    } else {
                        valid_len
                    },
                    "trial {trial}: drop arithmetic is off"
                );
                let state = store.export_lines();
                drop(store);

                // The healed file replays to the identical state,
                // cleanly.
                let reopened = KnowledgeStore::open(dir.path()).unwrap();
                assert!(reopened.recovery().clean(), "trial {trial}");
                assert_eq!(reopened.export_lines(), state, "trial {trial}");
            }
            Err(e) => {
                assert_eq!(
                    e.kind(),
                    io::ErrorKind::InvalidData,
                    "trial {trial}: only a forged newer-version header may refuse"
                );
            }
        }
    }
}

/// Store bytes are thread-count invariant, so a crash bites the same
/// way no matter how many workers built the WAL: stores built at 1, 2
/// and 8 threads are byte-identical, and after an identical mid-record
/// truncation they recover identical prefixes.
#[test]
fn recovery_is_identical_across_builder_thread_counts() {
    let m = compile(testprogs::SQRTEST).unwrap();
    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let oracle = |ins: &[Value], r: &gadt_pascal::interp::ProcRun| cases::arrsum_oracle(ins, r);

    let mut results: Vec<(String, usize, Vec<u8>)> = Vec::new();
    for threads in [1usize, 2, 8] {
        let dir = TempDir::new("store-threads");
        let shared = KnowledgeStore::open(dir.path()).unwrap().into_shared();
        cases::run_cases_batch_persisted(threads, &m, "arrsum", &tc, &oracle, &shared).unwrap();
        let fp = shared.lock().unwrap().disk_fingerprint().unwrap();
        let bytes = std::fs::read(dir.path().join(WAL)).unwrap();

        // Chop into the middle of the last record and recover.
        let ends = line_ends(&bytes);
        let cut = (ends[ends.len() - 2] + ends[ends.len() - 1]) / 2;
        drop(shared);
        std::fs::write(dir.path().join(WAL), &bytes[..cut]).unwrap();
        let store = KnowledgeStore::open(dir.path()).unwrap();
        assert_eq!(store.recovery().dropped_lines, 1);
        results.push((fp, store.recovery().wal_records, bytes));
    }

    let (fp0, recovered0, bytes0) = &results[0];
    for (fp, recovered, bytes) in &results[1..] {
        assert_eq!(fp, fp0, "store fingerprint varies with thread count");
        assert_eq!(bytes, bytes0, "WAL bytes vary with thread count");
        assert_eq!(recovered, recovered0, "recovery varies with thread count");
    }
}
