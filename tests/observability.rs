//! End-to-end checks of the structured observability layer: exact
//! counter values for the golden §8 sqrtest session, JSON-lines journal
//! validity, and thread-count invariance of campaign journals.

use gadt::oracle::{ChainOracle, ReferenceOracle};
use gadt::session;
use gadt::testlookup::TestLookup;
use gadt::DebugConfig;
use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_obs::{Journal, Recorder};
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_tgen::{cases, frames, spec};

/// Runs the paper's §8 session (sqrtest, arrsum test database, simulated
/// user via reference oracle) under one recorder and returns the journal.
fn golden_sqrtest_journal() -> Journal {
    let m = compile(testprogs::SQRTEST).unwrap();
    let fixed = compile(testprogs::SQRTEST_FIXED).unwrap();

    let mut rec = Recorder::new();
    let prepared = session::prepare_observed(&m, &mut rec).unwrap();
    let runs = session::run_traced_batch_observed(&prepared, vec![vec![]], 1, &mut rec).unwrap();

    let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let db = cases::run_cases_batch_observed(
        1,
        &m,
        "arrsum",
        &tc,
        &|ins, r| cases::arrsum_oracle(ins, r),
        &mut rec,
    )
    .unwrap();
    let mut lookup = TestLookup::new();
    lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));

    let mut chain = ChainOracle::new();
    chain.push(lookup);
    chain.push(ReferenceOracle::new(&fixed, []).unwrap());

    let out = session::debug_observed(
        &prepared,
        &runs[0],
        &mut chain,
        DebugConfig::default(),
        &mut rec,
    );
    assert_eq!(out.total_queries(), 7, "{}", out.render_transcript());
    rec.finish()
}

/// The golden session's counters, pinned exactly. Any change to how the
/// pipeline asks questions, slices, or traces must update these numbers
/// consciously.
#[test]
fn golden_sqrtest_session_pins_exact_counters() {
    let journal = golden_sqrtest_journal();

    // Phase III: 7 oracle questions — 1 answered by the test database,
    // 6 by the simulated user (reference oracle) — and 2 slices taken.
    assert_eq!(journal.counter("debug.questions"), 7);
    assert_eq!(
        journal.counter("debug.questions.by_source.test_database"),
        1
    );
    assert_eq!(
        journal.counter("debug.questions.by_source.simulated_user_reference_implementation"),
        6
    );
    assert_eq!(journal.counter("debug.slices"), 2);

    // Phase II: one traced run, 32 trace events over 14 dynamic calls
    // and 1 loop body, folded into a 15-node execution tree.
    assert_eq!(journal.counter("trace.runs"), 1);
    assert_eq!(journal.counter("trace.events"), 32);
    assert_eq!(journal.counter("trace.calls"), 14);
    assert_eq!(journal.counter("trace.loops"), 1);
    assert_eq!(journal.counter("tree.built"), 1);
    assert_eq!(journal.counter("tree.nodes"), 15);

    // Phase I: sqrtest's units already pass everything by parameter, so
    // the fixpoint is quiescent after a single round and grows nothing.
    assert_eq!(journal.counter("transform.rounds"), 1);
    assert_eq!(journal.counter("transform.added_params"), 0);
    assert_eq!(journal.counter("transform.synthetic_stmts"), 0);

    // The T-GEN database build journals its cases and verdicts: the
    // arrsum catalogue instantiates 4 cases, all passing.
    assert_eq!(journal.counter("tgen.cases"), 4);
    assert_eq!(journal.counter("tgen.passed"), 4);
    assert_eq!(journal.counter("tgen.failed"), 0);

    // One span pair per phase, in pipeline order.
    assert_eq!(journal.events_named("transform").count(), 2);
    assert_eq!(journal.events_named("trace").count(), 2);
    assert_eq!(journal.events_named("debug").count(), 2);
    // 7 question events, one per oracle query.
    assert_eq!(journal.events_named("question").count(), 7);
}

/// Every journal line must be valid JSON (checked by the std-only
/// validator — no serde in the tree).
#[test]
fn golden_journal_serializes_to_valid_json_lines() {
    let journal = golden_sqrtest_journal();
    let lines = journal.to_json_lines();
    assert!(!lines.is_empty());
    for line in lines.lines() {
        gadt_obs::json::validate(line).unwrap_or_else(|e| panic!("bad JSON `{line}`: {e:?}"));
    }
}

/// A fixed-seed campaign journal is byte-identical at 1, 2, and 8
/// worker threads: wall-clock lives only in the journal's time fields,
/// which the fingerprint excludes.
#[test]
fn campaign_journal_is_thread_count_invariant() {
    let programs = vec![CampaignProgram::new("sqrtest", testprogs::SQRTEST_FIXED)];
    let journal_at = |threads: usize| -> Journal {
        let config = CampaignConfig {
            seed: 77,
            max_mutants: 10,
            threads,
            ..CampaignConfig::default()
        };
        run_campaign(&programs, &config).unwrap().journal()
    };
    let one = journal_at(1);
    let two = journal_at(2);
    let eight = journal_at(8);
    assert_eq!(one.fingerprint(), two.fingerprint(), "1 vs 2 threads");
    assert_eq!(one.fingerprint(), eight.fingerprint(), "1 vs 8 threads");
    assert_eq!(one.counter("campaign.mutants"), 10);
    assert!(one.counter("with_slicing.debug.questions") > 0);
}
