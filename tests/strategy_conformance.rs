//! Conformance harness for the pluggable traversal strategies
//! (ROADMAP item 3): every strategy must agree with the paper's
//! top-down traversal on *what* is wrong — only the number of
//! questions it takes to get there may differ.
//!
//! The subject corpus is every known-good fixture (the paper
//! testprogs) plus every minimized fuzzer reproducer committed under
//! `tests/corpus_regressions/`, with the full fixed-seed mutation
//! campaign planting faults in each. For each strategy the suite pins:
//!
//! * verdict agreement — identical status class per mutant, and the
//!   blamed unit matches top-down's on all but a pinned handful of
//!   mutants where several nodes legitimately satisfy the bug
//!   criterion (an incorrect node whose children are all correct);
//! * exact question totals, with and without slicing — the strategy
//!   lab's quality metric, frozen so it cannot drift silently;
//! * bit-for-bit determinism at 1, 2, and 8 worker threads and across
//!   both execution engines.

use gadt::debugger::Strategy;
use gadt::session::Engine;
use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_mutate::report::{CampaignSummary, MutantStatus};
use gadt_pascal::testprogs;
use std::path::PathBuf;

/// The paper fixtures plus every committed fuzzer reproducer, in a
/// fixed order so campaign fingerprints are comparable.
fn conformance_programs() -> Vec<CampaignProgram> {
    let mut programs = vec![
        CampaignProgram::new("sqrtest", testprogs::SQRTEST_FIXED),
        CampaignProgram::new("pqr", testprogs::PQR_FIXED),
        CampaignProgram::new("multichain", testprogs::MULTICHAIN),
    ];
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_regressions");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("regression dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "pas"))
        .collect();
    files.sort();
    for path in files {
        programs.push(CampaignProgram::new(
            path.file_stem().unwrap().to_string_lossy().into_owned(),
            std::fs::read_to_string(&path).expect("read reproducer"),
        ));
    }
    programs
}

fn config(strategy: Strategy, threads: usize, engine: Engine) -> CampaignConfig {
    CampaignConfig {
        seed: 2026,
        max_mutants: 0,
        threads,
        // The goto/fuel reproducers run long even unmutated.
        max_steps: 2_000_000,
        engine,
        strategy,
    }
}

fn run(strategy: Strategy, threads: usize, engine: Engine) -> CampaignSummary {
    run_campaign(&conformance_programs(), &config(strategy, threads, engine))
        .expect("conformance programs are good")
}

fn status_class(s: &MutantStatus) -> &'static str {
    match s {
        MutantStatus::Stillborn { .. } => "stillborn",
        MutantStatus::Crashed { .. } => "crashed",
        MutantStatus::Equivalent => "equivalent",
        MutantStatus::Masked => "masked",
        MutantStatus::Localized { .. } => "localized",
    }
}

fn blamed_unit(s: &MutantStatus) -> Option<&str> {
    match s {
        MutantStatus::Localized { unit, .. } => Some(unit),
        _ => None,
    }
}

/// Per-strategy expectations over the fixed-seed conformance campaign.
/// `unit_disagreements` counts mutants where the strategy blames a
/// different (still admissible) node than top-down — all of them sit in
/// the recursive `dup_whilelab` reproducer, where several incorrect
/// nodes have all-correct children and the traversal order decides
/// which one the session reaches first.
struct Expected {
    strategy: Strategy,
    questions_with_slicing: usize,
    questions_without_slicing: usize,
    exact: usize,
    unit_disagreements: usize,
}

const EXPECTED: [Expected; 4] = [
    Expected {
        strategy: Strategy::TopDown,
        questions_with_slicing: 608,
        questions_without_slicing: 784,
        exact: 192,
        unit_disagreements: 0,
    },
    Expected {
        strategy: Strategy::DivideAndQuery,
        questions_with_slicing: 539,
        questions_without_slicing: 584,
        exact: 194,
        unit_disagreements: 2,
    },
    Expected {
        strategy: Strategy::DqOpt,
        questions_with_slicing: 619,
        questions_without_slicing: 604,
        exact: 194,
        unit_disagreements: 6,
    },
    Expected {
        strategy: Strategy::KnowledgeWeighted,
        questions_with_slicing: 619,
        questions_without_slicing: 604,
        exact: 194,
        unit_disagreements: 6,
    },
];

/// Every strategy reaches the same verdict as top-down on every mutant
/// of every fixture and reproducer (same status class; same blamed
/// unit outside the pinned ambiguous handful), localizes exactly as
/// many mutants, stays at or above top-down's exact-unit accuracy, and
/// asks exactly the pinned number of questions. Without slicing, both
/// bisection strategies ask strictly fewer questions than the paper's
/// spine walk.
#[test]
fn strategies_agree_with_top_down_and_pin_question_counts() {
    let summaries: Vec<(Strategy, CampaignSummary)> = Strategy::ALL
        .into_iter()
        .map(|s| (s, run(s, 8, Engine::default())))
        .collect();
    let top_down = &summaries[0].1;
    assert!(top_down.total() >= 300, "only {} mutants", top_down.total());

    for (i, (strategy, summary)) in summaries.iter().enumerate() {
        let expected = &EXPECTED[i];
        assert_eq!(expected.strategy, *strategy);
        assert_eq!(summary.total(), top_down.total(), "{}", strategy.slug());

        let (mut with_slicing, mut without_slicing, mut localized, mut exact) = (0, 0, 0, 0);
        let mut disagreements = Vec::new();
        for (base, report) in top_down.reports.iter().zip(&summary.reports) {
            assert_eq!(
                status_class(&base.status),
                status_class(&report.status),
                "{}: {} {}#{} changed status class",
                strategy.slug(),
                report.program,
                report.op,
                report.ordinal
            );
            if let MutantStatus::Localized {
                questions_with_slicing,
                questions_without_slicing,
                exact: is_exact,
                ..
            } = &report.status
            {
                with_slicing += questions_with_slicing;
                without_slicing += questions_without_slicing;
                localized += 1;
                exact += usize::from(*is_exact);
            }
            if blamed_unit(&base.status) != blamed_unit(&report.status) {
                disagreements.push(format!(
                    "{} {}#{}: {:?} vs {:?}",
                    report.program,
                    report.op,
                    report.ordinal,
                    blamed_unit(&base.status),
                    blamed_unit(&report.status)
                ));
            }
        }
        assert_eq!(
            localized,
            top_down.localized(),
            "{} killed a different mutant set",
            strategy.slug()
        );
        assert_eq!(
            disagreements.len(),
            expected.unit_disagreements,
            "{}: blamed-unit disagreements vs top-down drifted:\n{}",
            strategy.slug(),
            disagreements.join("\n")
        );
        assert_eq!(
            (with_slicing, without_slicing),
            (
                expected.questions_with_slicing,
                expected.questions_without_slicing
            ),
            "{}: question totals drifted",
            strategy.slug()
        );
        assert_eq!(
            exact,
            expected.exact,
            "{}: exact-unit count",
            strategy.slug()
        );
        assert!(
            exact >= EXPECTED[0].exact,
            "{} less accurate than top-down",
            strategy.slug()
        );
    }

    // The isolated strategy comparison (no slicing interplay): both
    // bisection strategies strictly beat the spine walk.
    assert!(EXPECTED[1].questions_without_slicing < EXPECTED[0].questions_without_slicing);
    assert!(EXPECTED[2].questions_without_slicing < EXPECTED[0].questions_without_slicing);
    // Without a store probe the knowledge-weighted strategy degenerates
    // to optimal D&Q *exactly* — whole-campaign fingerprints match.
    assert_eq!(
        summaries[2].1.fingerprint(),
        summaries[3].1.fingerprint(),
        "probe-less knowledge_weighted must equal dq_opt"
    );
}

/// Each new strategy is bit-for-bit deterministic: the campaign
/// fingerprint is identical at 1, 2, and 8 worker threads, and
/// identical across the tree-walking and bytecode engines.
#[test]
fn strategy_campaigns_are_thread_and_engine_deterministic() {
    for strategy in [
        Strategy::DivideAndQuery,
        Strategy::DqOpt,
        Strategy::KnowledgeWeighted,
    ] {
        let baseline = run(strategy, 1, Engine::Vm);
        for threads in [2, 8] {
            assert_eq!(
                baseline.fingerprint(),
                run(strategy, threads, Engine::Vm).fingerprint(),
                "{} diverges at {threads} threads",
                strategy.slug()
            );
        }
        assert_eq!(
            baseline.fingerprint(),
            run(strategy, 8, Engine::TreeWalker).fingerprint(),
            "{} diverges across engines",
            strategy.slug()
        );
    }
}
