//! Differential-fuzzing golden gate.
//!
//! Runs the corpus generator's first 500 programs through the full
//! differential harness — original vs transformed execution, output
//! comparison, and slice-replay soundness for every program-level
//! variable — and pins the clean count at exactly 500. Any regression in
//! the parser, printer, transforms, interpreter, or slicer that this
//! corpus can observe turns into a counted divergence here.

use gadt_repro::corpus::{run_sweep, run_sweep_observed, DiffConfig, GenConfig};
use gadt_repro::obs::Recorder;

/// Golden count: every one of the first 500 generated programs passes
/// the differential check with zero divergences. History: the harness
/// surfaced and drove out four bug classes before this pin was possible
/// (unary-minus printing, duplicate whilelab labels, and two
/// slice-replay closure gaps); see tests/corpus_regressions/.
const PROGRAMS: usize = 500;
const GOLDEN_CLEAN: usize = 500;

#[test]
fn first_500_programs_have_zero_divergences() {
    let config = DiffConfig {
        shrink: true,
        ..DiffConfig::default()
    };
    let report = run_sweep(0, PROGRAMS, &GenConfig::default(), &config, 4);
    assert_eq!(report.checked, PROGRAMS);
    let details: Vec<String> = report
        .divergent
        .iter()
        .map(|v| {
            let d = v.divergence.as_ref().expect("divergent verdict");
            format!(
                "seed {}: {} at {}: {}\n{}",
                v.seed,
                d.kind,
                d.stage,
                d.detail,
                v.minimized.as_deref().unwrap_or("<unminimized>")
            )
        })
        .collect();
    assert_eq!(
        report.clean,
        GOLDEN_CLEAN,
        "differential sweep regressed:\n{}",
        details.join("\n---\n")
    );
}

/// The observed variant journals the sweep: the per-kind divergence
/// counters must reconcile exactly with the report.
#[test]
fn observed_sweep_counters_reconcile() {
    let mut rec = Recorder::new();
    let report = run_sweep_observed(
        0,
        120,
        &GenConfig::default(),
        &DiffConfig {
            shrink: false,
            ..DiffConfig::default()
        },
        2,
        &mut rec,
    );
    let journal = rec.finish();
    let get = |suffix: &str| -> u64 {
        journal
            .counters
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    };
    assert_eq!(get("programs_checked"), report.checked as u64);
    assert_eq!(get("programs_clean"), report.clean as u64);
    assert_eq!(get("programs_divergent"), report.divergent.len() as u64);
    let per_kind: u64 = journal
        .counters
        .iter()
        .filter(|(k, _)| k.contains("divergence_"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(per_kind, report.divergent.len() as u64);
}
