//! Property-based tests over generated programs: the system-level
//! invariants that make the reproduction trustworthy.
//!
//! * printing∘parsing is a fixpoint and preserves behaviour;
//! * the §6 transformation preserves behaviour and removes every global
//!   side effect;
//! * static slices are executable and preserve the criterion variable;
//! * dynamic slices subset the executed statements;
//! * the debugger localizes planted mutations under every method.
//!
//! The invariants run in two forms. The `deterministic` module sweeps a
//! fixed seed grid and always runs — the offline tier-1 gate. The
//! `prop` module explores the space with proptest and is gated behind
//! `--cfg gadt_proptest` (not a cargo feature, so `--all-features`
//! stays green offline), because the offline build environment cannot
//! fetch the crate; restore `proptest = "1"` under the root
//! `[dev-dependencies]` and run
//! `RUSTFLAGS="--cfg gadt_proptest" cargo test --test properties`.

use gadt_bench::genprog::{generate, GenConfig};

fn gen_source(procs: usize, seed: u64) -> String {
    generate(&GenConfig {
        procs,
        max_calls: 2,
        seed,
    })
    .source
}

mod deterministic {
    use super::gen_source;
    use gadt_bench::genprog::{generate, mutate, GenConfig};
    use gadt_pascal::interp::Interpreter;
    use gadt_pascal::pretty::{print_program, print_slice};
    use gadt_pascal::sema::compile;

    /// The fixed sweep grid: enough (procs, seed) diversity to exercise
    /// every generator shape without proptest.
    fn grid() -> impl Iterator<Item = (usize, u64)> {
        (2usize..10).flat_map(|procs| (0u64..6).map(move |seed| (procs, seed * 97 + 1)))
    }

    #[test]
    fn generated_programs_compile_and_terminate() {
        for (procs, seed) in grid() {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap_or_else(|e| panic!("{procs}/{seed}: {e}\n{src}"));
            let out = Interpreter::new(&m)
                .run()
                .unwrap_or_else(|e| panic!("{procs}/{seed}: {e}\n{src}"));
            assert!(!out.output_text().is_empty());
        }
    }

    #[test]
    fn pretty_print_round_trip_preserves_behaviour() {
        for (procs, seed) in grid() {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let printed = print_program(&m.program);
            let m2 = compile(&printed).expect("printed program compiles");
            let o1 = Interpreter::new(&m).run().unwrap();
            let o2 = Interpreter::new(&m2).run().unwrap();
            assert_eq!(o1.output_text(), o2.output_text(), "{procs}/{seed}");
            // Printing is a fixpoint.
            assert_eq!(printed, print_program(&m2.program), "{procs}/{seed}");
        }
    }

    #[test]
    fn transformation_preserves_behaviour() {
        for (procs, seed) in grid() {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let t = gadt_transform::transform(&m).expect("transform");
            let o1 = Interpreter::new(&m).run().unwrap();
            let o2 = Interpreter::new(&t.module).run().unwrap();
            assert_eq!(o1.output_text(), o2.output_text(), "{procs}/{seed}");
        }
    }

    #[test]
    fn static_slice_preserves_criterion_variable() {
        use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
        for (procs, seed) in grid().filter(|&(p, _)| p < 8) {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let cfg = gadt_pascal::cfg::lower(&m);
            let cx = SliceContext::new(&m, &cfg);
            let crit = SliceCriterion::at_program_end(&m, "r1").unwrap();
            let slice = static_slice(&cx, &crit);
            let printed = print_slice(&m.program, &slice.stmts);
            let sm = compile(&printed).unwrap_or_else(|e| {
                panic!("{procs}/{seed}: slice does not compile: {e}\n{printed}")
            });
            let o1 = Interpreter::new(&m).run().unwrap();
            let o2 = Interpreter::new(&sm).run().unwrap();
            assert_eq!(
                o1.global("r1"),
                o2.global("r1"),
                "{procs}/{seed}: criterion variable differs\nslice:\n{printed}"
            );
        }
    }

    #[test]
    fn dynamic_slice_is_subset_of_executed_statements() {
        use gadt_analysis::dyntrace::record_trace;
        use gadt_analysis::slice_dynamic::dynamic_slice_output;
        for (procs, seed) in grid().filter(|&(p, _)| p < 8) {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let cfg = gadt_pascal::cfg::lower(&m);
            let trace = record_trace(&m, &cfg, []).unwrap();
            let executed: std::collections::BTreeSet<_> =
                trace.events.iter().map(|e| e.stmt).collect();
            let top = trace.calls[1].id;
            for k in 0..trace.call(top).outs.len() {
                let slice = dynamic_slice_output(&m, &trace, top, k);
                for s in &slice.stmts {
                    assert!(
                        executed.contains(s),
                        "{procs}/{seed}: slice stmt {s} never executed"
                    );
                }
                assert!(!slice.calls.is_empty());
            }
        }
    }

    /// Slice soundness: a backward dynamic slice must contain every traced
    /// write that flowed into the criterion — i.e. the slice's event set is
    /// closed under both data and control dependences, starting from the
    /// criterion's defining event. A miss prints the offending program and
    /// seed so the case can be replayed.
    #[test]
    fn dynamic_slice_contains_every_contributing_write() {
        use gadt_analysis::dyntrace::record_trace;
        use gadt_analysis::slice_dynamic::dynamic_slice_output;
        for (procs, seed) in grid() {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let cfg = gadt_pascal::cfg::lower(&m);
            let trace = record_trace(&m, &cfg, []).unwrap();
            for call in &trace.calls {
                for k in 0..call.outs.len() {
                    let slice = dynamic_slice_output(&m, &trace, call.id, k);
                    for &e in &slice.events {
                        let ev = &trace.events[e];
                        for &d in &ev.data_deps {
                            assert!(
                                slice.events.contains(&d),
                                "procs={procs} seed={seed} call={} out={k}: event {e} \
                                 depends on write {d} which the slice misses\n{src}",
                                call.id
                            );
                        }
                        if let Some(c) = ev.control_dep {
                            assert!(
                                slice.events.contains(&c),
                                "procs={procs} seed={seed} call={} out={k}: event {e} \
                                 is controlled by {c} which the slice misses\n{src}",
                                call.id
                            );
                        }
                        assert!(
                            slice.keeps_call(ev.call),
                            "procs={procs} seed={seed}: sliced event {e} lives in a \
                             pruned call\n{src}"
                        );
                    }
                    // A generated program initializes everything it reads,
                    // so its slices must never need omission repair.
                    assert!(
                        slice.complete,
                        "procs={procs} seed={seed} call={} out={k}: spurious \
                         incomplete slice\n{src}",
                        call.id
                    );
                }
            }
        }
    }

    /// Store round trip: persist → load → persist into a second store
    /// produces byte-identical files, loading reconstructs the exact
    /// `TestDb`, and re-persisting is a no-op. This is the determinism
    /// contract that lets two sessions share knowledge by fingerprint.
    #[test]
    fn store_persist_load_persist_is_byte_identical() {
        use gadt_pascal::testprogs;
        use gadt_store::{KnowledgeStore, TempDir};
        use gadt_tgen::cases::TestDb;
        use gadt_tgen::{cases, frames, spec};

        let m = compile(testprogs::SQRTEST).unwrap();
        let s = spec::parse_spec(spec::ARRSUM_SPEC).unwrap();
        let g = frames::generate_frames(&s, Default::default());
        let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
        let db = cases::run_cases(&m, "arrsum", &tc, &|i, r| cases::arrsum_oracle(i, r)).unwrap();

        let dir_a = TempDir::new("prop-store-a");
        let mut a = KnowledgeStore::open(dir_a.path()).unwrap();
        let appended = db.persist(&mut a).unwrap();
        assert_eq!(appended, db.len());
        a.sync().unwrap();

        let db2 = TestDb::load_from(&a, "ArrSum");
        assert_eq!(db2, db, "load is not the inverse of persist");

        let dir_b = TempDir::new("prop-store-b");
        let mut b = KnowledgeStore::open(dir_b.path()).unwrap();
        db2.persist(&mut b).unwrap();
        b.sync().unwrap();
        assert_eq!(
            a.disk_fingerprint().unwrap(),
            b.disk_fingerprint().unwrap(),
            "persist∘load∘persist changed the bytes"
        );

        // Re-persisting held knowledge writes nothing.
        assert_eq!(db.persist(&mut b).unwrap(), 0);
        b.sync().unwrap();
        assert_eq!(
            a.disk_fingerprint().unwrap(),
            b.disk_fingerprint().unwrap(),
            "idempotent persist dirtied the store"
        );

        // Compaction relocates the records without losing any.
        b.compact().unwrap();
        assert_eq!(b.wal_records(), 0);
        drop(b);
        let c = KnowledgeStore::open(dir_b.path()).unwrap();
        assert_eq!(
            TestDb::load_from(&c, "arrsum"),
            db,
            "compaction lost records"
        );
    }

    #[test]
    fn debugger_localizes_planted_mutations() {
        use gadt_bench::measure::{measure_session, MethodConfig};
        for (procs, seed) in grid().filter(|&(p, _)| (3..9).contains(&p)) {
            let gen = generate(&GenConfig {
                procs,
                max_calls: 2,
                seed,
            });
            let Some(mutation) = mutate(&gen, seed) else {
                continue;
            };
            let fixed = compile(&gen.source).unwrap();
            let Ok(buggy) = compile(&mutation.source) else {
                continue;
            };
            let (Ok(of), Ok(ob)) = (
                Interpreter::new(&fixed).run(),
                Interpreter::new(&buggy).run(),
            ) else {
                continue;
            };
            if of.output_text() == ob.output_text() {
                continue; // equivalent mutant
            }
            for slicing in [false, true] {
                let measured = measure_session(
                    &buggy,
                    &fixed,
                    &mutation.in_proc,
                    MethodConfig {
                        slicing,
                        test_coverage: 0.0,
                        strategy: Default::default(),
                    },
                    seed,
                )
                .unwrap();
                assert!(
                    measured.localized_correctly,
                    "{procs}/{seed} slicing={slicing}: blamed {} instead of {}",
                    measured.blamed, mutation.in_proc
                );
            }
        }
    }
}

#[cfg(gadt_proptest)]
mod prop {
    use super::gen_source;
    use gadt_bench::genprog::{generate, mutate, GenConfig};
    use gadt_pascal::interp::Interpreter;
    use gadt_pascal::pretty::{print_program, print_slice};
    use gadt_pascal::sema::compile;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn generated_programs_compile_and_terminate(
            procs in 2usize..12,
            seed in 0u64..1000,
        ) {
            let src = gen_source(procs, seed);
            let m = compile(&src).expect("generated programs compile");
            let out = Interpreter::new(&m).run().expect("generated programs run");
            prop_assert!(!out.output_text().is_empty());
        }

        #[test]
        fn pretty_print_round_trip_preserves_behaviour(
            procs in 2usize..10,
            seed in 0u64..1000,
        ) {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let printed = print_program(&m.program);
            let m2 = compile(&printed).expect("printed program compiles");
            let o1 = Interpreter::new(&m).run().unwrap();
            let o2 = Interpreter::new(&m2).run().unwrap();
            prop_assert_eq!(o1.output_text(), o2.output_text());
            // Printing is a fixpoint.
            let printed2 = print_program(&m2.program);
            prop_assert_eq!(printed, printed2);
        }

        #[test]
        fn transformation_preserves_behaviour(
            procs in 2usize..10,
            seed in 0u64..1000,
        ) {
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let t = gadt_transform::transform(&m).expect("transform");
            let o1 = Interpreter::new(&m).run().unwrap();
            let o2 = Interpreter::new(&t.module).run().unwrap();
            prop_assert_eq!(o1.output_text(), o2.output_text());
        }

        #[test]
        fn static_slice_preserves_criterion_variable(
            procs in 2usize..8,
            seed in 0u64..1000,
        ) {
            use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let cfg = gadt_pascal::cfg::lower(&m);
            let cx = SliceContext::new(&m, &cfg);
            let crit = SliceCriterion::at_program_end(&m, "r1").unwrap();
            let slice = static_slice(&cx, &crit);
            let printed = print_slice(&m.program, &slice.stmts);
            let sm = compile(&printed)
                .map_err(|e| TestCaseError::fail(format!("slice does not compile: {e}\n{printed}")))?;
            let o1 = Interpreter::new(&m).run().unwrap();
            let o2 = Interpreter::new(&sm).run().unwrap();
            prop_assert_eq!(
                o1.global("r1"), o2.global("r1"),
                "criterion variable differs\nslice:\n{}", printed
            );
        }

        #[test]
        fn dynamic_slice_is_subset_of_executed_statements(
            procs in 2usize..8,
            seed in 0u64..1000,
        ) {
            use gadt_analysis::dyntrace::record_trace;
            use gadt_analysis::slice_dynamic::dynamic_slice_output;
            let src = gen_source(procs, seed);
            let m = compile(&src).unwrap();
            let cfg = gadt_pascal::cfg::lower(&m);
            let trace = record_trace(&m, &cfg, []).unwrap();
            let executed: std::collections::BTreeSet<_> =
                trace.events.iter().map(|e| e.stmt).collect();
            let top = trace.calls[1].id;
            for k in 0..trace.call(top).outs.len() {
                let slice = dynamic_slice_output(&m, &trace, top, k);
                for s in &slice.stmts {
                    prop_assert!(executed.contains(s), "slice stmt {s} never executed");
                }
                prop_assert!(!slice.calls.is_empty());
            }
        }

        #[test]
        fn debugger_localizes_planted_mutations(
            procs in 3usize..9,
            seed in 0u64..500,
        ) {
            use gadt_bench::measure::{measure_session, MethodConfig};
            let gen = generate(&GenConfig { procs, max_calls: 2, seed });
            let Some(mutation) = mutate(&gen, seed) else {
                return Ok(());
            };
            let fixed = compile(&gen.source).unwrap();
            let buggy = compile(&mutation.source).unwrap();
            let of = Interpreter::new(&fixed).run();
            let ob = Interpreter::new(&buggy).run();
            let (Ok(of), Ok(ob)) = (of, ob) else { return Ok(()); };
            if of.output_text() == ob.output_text() {
                return Ok(()); // equivalent mutant
            }
            for slicing in [false, true] {
                let measured = measure_session(
                    &buggy,
                    &fixed,
                    &mutation.in_proc,
                    MethodConfig {
                        slicing,
                        test_coverage: 0.0,
                        strategy: Default::default(),
                    },
                    seed,
                )
                .unwrap();
                prop_assert!(
                    measured.localized_correctly,
                    "slicing={slicing}: blamed {} instead of {}",
                    measured.blamed,
                    mutation.in_proc
                );
            }
        }
    }
}

/// Strategy safety net (ROADMAP item 3) — a 2000-seed sweep of
/// generated programs with planted mutations, each killed mutant
/// debugged under all four traversal strategies. Pinned per strategy:
///
/// * **termination** — the session ends within one question per tree
///   node (no strategy can loop);
/// * **no re-asking** — a node judged once is never asked again
///   (judged nodes stay cleared across focus changes);
/// * **convergence** — the session ends on a node that misbehaved
///   while none of its children did: the §3 bug criterion, checked
///   against the reference oracle *after* the session, independently
///   of the path the strategy took to get there.
///
/// Slicing is off so node ids stay stable for the whole session (a
/// slice replaces the tree, which would make "same node twice"
/// meaningless).
#[test]
fn every_strategy_terminates_never_reasks_and_converges() {
    use gadt::debugger::{DebugConfig, DebugResult, Strategy};
    use gadt::oracle::{Answer, Oracle, ReferenceOracle};
    use gadt::session::{prepare, run_traced};
    use gadt::DebugHandle;
    use gadt_bench::genprog::{generate, mutate, GenConfig};
    use gadt_pascal::interp::Interpreter;
    use gadt_pascal::sema::compile;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    let mut killed = 0usize;
    for i in 0..2000u64 {
        let procs = 3 + (i % 5) as usize;
        let seed = i * 131 + 7;
        let gen = generate(&GenConfig {
            procs,
            max_calls: 2,
            seed,
        });
        let Some(mutation) = mutate(&gen, seed) else {
            continue;
        };
        let fixed = compile(&gen.source).unwrap();
        let Ok(buggy) = compile(&mutation.source) else {
            continue;
        };
        let (Ok(of), Ok(ob)) = (
            Interpreter::new(&fixed).run(),
            Interpreter::new(&buggy).run(),
        ) else {
            continue;
        };
        if of.output_text() == ob.output_text() {
            continue; // equivalent mutant — no symptom, no session
        }
        killed += 1;

        let prepared = prepare(&buggy).unwrap();
        let run = run_traced(&prepared, []).unwrap();
        let module = Arc::new(prepared.transformed.module.clone());
        let trace = Arc::new(run.trace.clone());
        for strategy in Strategy::ALL {
            let mut oracle = ReferenceOracle::new(&fixed, []).unwrap();
            let mut handle = DebugHandle::new(
                module.clone(),
                trace.clone(),
                Some(prepared.transformed.mapping.clone()),
                run.tree.clone(),
                DebugConfig {
                    strategy,
                    slicing: false,
                },
            );
            let budget = handle.tree().len();
            let mut asked = BTreeSet::new();
            let mut blamed = handle.tree().root;
            while let Some(q) = handle.next_question() {
                let node = q.node;
                assert!(
                    asked.insert(node),
                    "{procs}/{seed} {}: node {node:?} asked twice",
                    strategy.slug()
                );
                assert!(
                    asked.len() <= budget,
                    "{procs}/{seed} {}: more questions than tree nodes",
                    strategy.slug()
                );
                let verdict = oracle.judge(&module, handle.tree(), node);
                if matches!(verdict, Answer::Incorrect { .. }) {
                    blamed = node;
                }
                handle.answer_from(verdict, "reference");
            }
            assert!(
                matches!(handle.result(), Some(DebugResult::BugLocalized { .. })),
                "{procs}/{seed} {}: session ended without a verdict",
                strategy.slug()
            );
            // Convergence: the bug criterion holds at the final focus —
            // every child of the blamed node behaved correctly.
            let children = handle.tree().node(blamed).children.clone();
            for child in children {
                let verdict = oracle.judge(&module, handle.tree(), child);
                assert!(
                    !matches!(verdict, Answer::Incorrect { .. }),
                    "{procs}/{seed} {}: blamed node has a misbehaving child",
                    strategy.slug()
                );
            }
        }
    }
    assert!(killed >= 500, "only {killed} killed mutants in the sweep");
}
