//! Fast-path equivalence suite: the monitor-free fast path must be
//! *result-identical* to a monitored run with a no-op monitor — same
//! output, step count, final globals, and (for failing programs) the
//! same error, byte for byte — on **both** engines.
//!
//! Subjects: every curated paper fixture, every committed
//! corpus-regression reproducer, a 2000-seed generated-corpus sweep, and
//! isolated procedure runs. A separate test pins campaign invariance:
//! the two-stage kill check (fast crash screen → traced run) must leave
//! kill verdicts and `CampaignSummary` fingerprints unchanged at 1, 2,
//! and 8 worker threads.

use gadt_corpus::gen::{generate, GenConfig};
use gadt_mutate::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_pascal::cfg::lower;
use gadt_pascal::interp::{Limits, NoopMonitor};
use gadt_pascal::sema::{compile, Module, MAIN_PROC};
use gadt_pascal::testprogs;
use gadt_pascal::types::Type;
use gadt_pascal::value::Value;
use gadt_vm::{CallSemantics, Engine, PreparedEngine};

/// Shared input queue: enough values to satisfy any fixture's `read`s.
fn input() -> Vec<Value> {
    [3, 5, 2, 7, 1, 4, 6, 8].map(Value::Int).to_vec()
}

/// Curated fixtures plus every committed corpus-regression reproducer.
fn subjects() -> Vec<(String, String)> {
    let mut subs: Vec<(String, String)> = testprogs::ALL
        .iter()
        .map(|(n, s)| ((*n).to_string(), (*s).to_string()))
        .collect();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_regressions");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/corpus_regressions must exist")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "pas"))
        .collect();
    paths.sort();
    for p in paths {
        let name = p
            .file_stem()
            .expect("file stem")
            .to_string_lossy()
            .into_owned();
        let src = std::fs::read_to_string(&p).expect("readable reproducer");
        subs.push((name, src));
    }
    subs
}

/// Asserts that `run_fast` and `run_with(NoopMonitor)` agree on one
/// prepared engine — outcome fields or error text, byte for byte.
fn assert_fast_matches_monitored(
    name: &str,
    engine: &PreparedEngine<'_>,
    input: &[Value],
    limits: Limits,
) {
    let fast = engine.run_fast(input.to_vec(), limits);
    let slow = engine.run_with(input.to_vec(), limits, &mut NoopMonitor);
    match (&fast, &slow) {
        (Ok(f), Ok(s)) => {
            let tag = format!("{name} [{}]", engine.engine());
            assert_eq!(f.output_text(), s.output_text(), "{tag}: output");
            assert_eq!(f.steps, s.steps, "{tag}: steps");
            assert_eq!(f.globals, s.globals, "{tag}: globals");
        }
        (Err(f), Err(s)) => {
            assert_eq!(
                f.to_string(),
                s.to_string(),
                "{name} [{}]: error text",
                engine.engine()
            );
        }
        _ => panic!(
            "{name} [{}]: outcome kind diverges: fast {fast:?} vs monitored {slow:?}",
            engine.engine()
        ),
    }
}

#[test]
fn fast_path_matches_monitored_on_fixtures() {
    for (name, src) in subjects() {
        let module = compile(&src).expect(&name);
        let cfg = lower(&module);
        for eng in [Engine::TreeWalker, Engine::Vm] {
            let engine = PreparedEngine::new(&module, &cfg, eng);
            assert_fast_matches_monitored(&name, &engine, &input(), Limits::default());
        }
    }
}

/// Step-limit exhaustion must produce the identical error on the fast
/// path — the screen-then-trace campaign design depends on it.
#[test]
fn fast_path_matches_monitored_on_limit_exhaustion() {
    for (name, src) in subjects() {
        let module = compile(&src).expect(&name);
        let cfg = lower(&module);
        let tight = Limits {
            max_steps: 7,
            ..Limits::default()
        };
        for eng in [Engine::TreeWalker, Engine::Vm] {
            let engine = PreparedEngine::new(&module, &cfg, eng);
            assert_fast_matches_monitored(&name, &engine, &input(), tight);
        }
    }
}

/// Isolated procedure runs (the T-GEN verdict path): `run_proc_fast`
/// agrees with the monitored entry point on result and error alike.
#[test]
fn fast_proc_runs_match_monitored() {
    fn sample_args(module: &Module, params: &[gadt_pascal::sema::VarId]) -> Vec<Value> {
        params
            .iter()
            .enumerate()
            .map(|(i, &p)| match &module.var(p).ty {
                Type::Integer => Value::Int(i as i64 + 2),
                Type::Real => Value::Real(1.5),
                Type::Boolean => Value::Bool(true),
                ty => Value::zero_of(ty),
            })
            .collect()
    }
    let mut covered = 0usize;
    for (name, src) in subjects() {
        let module = compile(&src).expect(&name);
        let cfg = lower(&module);
        for eng in [Engine::TreeWalker, Engine::Vm] {
            let engine = PreparedEngine::new(&module, &cfg, eng);
            for info in &module.procs {
                if info.id == MAIN_PROC || info.parent != Some(MAIN_PROC) {
                    continue;
                }
                let args = sample_args(&module, &info.params);
                let fast = engine.run_proc_fast(info.id, args.clone(), Limits::default());
                let slow = engine.run_proc_with(info.id, args, Limits::default(), &mut NoopMonitor);
                let tag = format!("{name} [{eng}] proc {}", info.name);
                match (&fast, &slow) {
                    (Ok(f), Ok(s)) => assert_eq!(format!("{f:?}"), format!("{s:?}"), "{tag}"),
                    (Err(f), Err(s)) => assert_eq!(f.to_string(), s.to_string(), "{tag}"),
                    _ => panic!("{tag}: outcome kind diverges: {fast:?} vs {slow:?}"),
                }
                covered += 1;
            }
        }
    }
    assert!(covered > 40, "only {covered} procedure runs covered");
}

/// 2000 generated programs: the fast path agrees with the monitored
/// path on both engines for every seed. This is the wide net — the
/// generator covers gotos, nested procedures, var params, arrays and
/// runaway-guard fuel patterns the curated fixtures do not combine.
#[test]
fn fast_path_matches_monitored_on_generated_corpus() {
    let config = GenConfig::default();
    for seed in 0..2000u64 {
        let p = generate(seed, &config);
        let module = compile(&p.source).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let cfg = lower(&module);
        for eng in [Engine::TreeWalker, Engine::Vm] {
            let engine = PreparedEngine::new(&module, &cfg, eng);
            assert_fast_matches_monitored(
                &format!("seed {seed}"),
                &engine,
                &p.input,
                Limits::default(),
            );
        }
    }
}

/// The campaign's two-stage kill check (monitor-free crash screen, then
/// the traced pipeline) must leave verdicts and fingerprints exactly
/// where they were: identical across 1, 2, and 8 worker threads, with
/// crashed mutants actually classified (the screen must not eat them).
#[test]
fn campaign_verdicts_and_fingerprints_are_thread_invariant() {
    let programs = vec![
        CampaignProgram::new("pqr", testprogs::PQR_FIXED),
        CampaignProgram::new("sqrtest", testprogs::SQRTEST_FIXED),
    ];
    let run = |threads: usize| {
        let config = CampaignConfig {
            threads,
            max_mutants: 24,
            ..CampaignConfig::default()
        };
        run_campaign(&programs, &config).expect("campaign")
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(one.fingerprint(), two.fingerprint());
    assert_eq!(one.fingerprint(), eight.fingerprint());
    assert_eq!(one.total(), 24);
    // The sample reliably contains observably-killed mutants; the crash
    // screen must leave localization intact.
    assert!(one.localized() > 0, "{}", one.fingerprint());
}
