//! Edge-case integration tests: recursion meets slicing, divide-and-query
//! meets slicing, deep nesting meets transformation — the combinations a
//! downstream user will eventually hit.

use gadt::debugger::{DebugConfig, DebugResult, Debugger, Strategy};
use gadt::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{prepare, run_traced};
use gadt_analysis::dyntrace::record_trace;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
use gadt_pascal::cfg::lower;
use gadt_pascal::sema::compile;

/// Dynamic slicing distinguishes recursion instances: slicing on one
/// call's output keeps only the instances that fed it.
#[test]
fn dynamic_slice_on_recursive_calls() {
    let src = "program t; var r: integer;
         function fact(n: integer): integer;
         begin
           if n <= 1 then fact := 1 else fact := n * fact(n - 1)
         end;
         begin r := fact(4); writeln(r) end.";
    let m = compile(src).unwrap();
    let cfg = lower(&m);
    let trace = record_trace(&m, &cfg, []).unwrap();
    // Instances: fact(4), fact(3), fact(2), fact(1).
    let fact_calls: Vec<u64> = trace
        .calls
        .iter()
        .filter(|c| m.proc(c.proc).name == "fact")
        .map(|c| c.id)
        .collect();
    assert_eq!(fact_calls.len(), 4);
    // Slicing on the innermost instance keeps only its own chain (and
    // the ancestry spine), not the outer multiplications that come after.
    let innermost = *fact_calls.last().unwrap();
    let slice = dynamic_slice_output(&m, &trace, innermost, 0);
    assert!(slice.keeps_call(innermost));
    // Every kept call is on the ancestor chain of the innermost call.
    for c in &slice.calls {
        let mut cur = Some(innermost);
        let mut on_chain = false;
        while let Some(x) = cur {
            if x == *c {
                on_chain = true;
                break;
            }
            cur = trace.call(x).parent;
        }
        assert!(on_chain, "call {c} is not an ancestor of the innermost");
    }
}

/// The static slicer terminates and produces a sound slice on recursive
/// procedures (the fixpoint must not diverge).
#[test]
fn static_slice_on_recursion_terminates() {
    let src = "program t; var r, junk: integer;
         function fib(n: integer): integer;
         begin
           if n <= 1 then fib := n else fib := fib(n - 1) + fib(n - 2)
         end;
         begin junk := 42; r := fib(10); writeln(r) end.";
    let m = compile(src).unwrap();
    let cfg = lower(&m);
    let cx = SliceContext::new(&m, &cfg);
    let crit = SliceCriterion::at_program_end(&m, "r").unwrap();
    let slice = static_slice(&cx, &crit);
    // The slice keeps fib's body and drops junk.
    let printed = gadt_pascal::pretty::print_slice(&m.program, &slice.stmts);
    assert!(printed.contains("fib"), "{printed}");
    assert!(!printed.contains("junk"), "{printed}");
    // And the printed slice still computes r correctly.
    let sm = compile(&printed).unwrap();
    let o1 = gadt_pascal::interp::Interpreter::new(&m).run().unwrap();
    let o2 = gadt_pascal::interp::Interpreter::new(&sm).run().unwrap();
    assert_eq!(o1.global("r"), o2.global("r"));
}

/// Debugging a buggy recursive function: the bug is localized to the
/// function even though dozens of instances appear in the tree.
#[test]
fn debugging_recursive_program() {
    let src = "program t; var r: integer;
         function sumto(n: integer): integer;
         begin
           if n <= 0 then sumto := 1 (* bug: should be 0 *)
           else sumto := n + sumto(n - 1)
         end;
         begin r := sumto(5); writeln(r) end.";
    let fixed_src = src.replace("sumto := 1 (* bug: should be 0 *)", "sumto := 0");
    let buggy = compile(src).unwrap();
    let fixed = compile(&fixed_src).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = Debugger::new(
        &prepared.transformed.module,
        &run.trace,
        DebugConfig::default(),
    )
    .run_program(&run.tree, &mut chain);
    assert!(
        matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "sumto"),
        "{}",
        out.render_transcript()
    );
}

/// Divide-and-query with slicing enabled still localizes correctly.
#[test]
fn divide_and_query_with_slicing() {
    let buggy = compile(gadt_pascal::testprogs::SQRTEST).unwrap();
    let fixed = compile(gadt_pascal::testprogs::SQRTEST_FIXED).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = Debugger::new(
        &prepared.transformed.module,
        &run.trace,
        DebugConfig {
            strategy: Strategy::DivideAndQuery,
            slicing: true,
        },
    )
    .run_program(&run.tree, &mut chain);
    assert!(
        matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"),
        "{}",
        out.render_transcript()
    );
}

/// Transformation of a three-level nested program with mixed side
/// effects: uplevel locals, globals, and a non-local goto together.
#[test]
fn transformation_of_deeply_nested_mixed_effects() {
    let src = "program t; var g: integer;
         procedure level1;
         label 8;
         var x: integer;
           procedure level2;
           var y: integer;
             procedure level3;
             begin
               g := g + 1;
               x := x + 10;
               y := y + 100;
               if g > 1 then goto 8;
             end;
           begin y := 0; level3; level3; x := x + y end;
         begin x := 0; level2; 8: g := g + x end;
         begin g := 0; level1; writeln(g) end.";
    let m = compile(src).unwrap();
    let t = gadt_transform::transform(&m).unwrap();
    let o1 = gadt_pascal::interp::Interpreter::new(&m).run().unwrap();
    let o2 = gadt_pascal::interp::Interpreter::new(&t.module)
        .run()
        .unwrap();
    assert_eq!(o1.output_text(), o2.output_text());
    // Zero residual side effects.
    let cfg = lower(&t.module);
    let (_cg, fx) = gadt_analysis::effects::analyze(&t.module, &cfg);
    for p in &t.module.procs {
        if p.id != gadt_pascal::sema::MAIN_PROC {
            assert!(
                !fx.has_global_side_effects(p.id),
                "{} retains side effects",
                p.name
            );
        }
    }
}

/// Tracing a program whose symptom is output text (write) rather than a
/// global: the tree still supports debugging.
#[test]
fn debugging_with_write_only_symptom() {
    let src = "program t;
         function double(x: integer): integer;
         begin double := x + x + 1 (* bug *) end;
         begin writeln(double(21)) end.";
    let fixed_src = src.replace("x + x + 1 (* bug *)", "x + x");
    let buggy = compile(src).unwrap();
    let fixed = compile(&fixed_src).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    assert_eq!(run.output, "43\n");
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = Debugger::new(
        &prepared.transformed.module,
        &run.trace,
        DebugConfig::default(),
    )
    .run_program(&run.tree, &mut chain);
    assert!(
        matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "double"),
        "{}",
        out.render_transcript()
    );
}

/// A program with two independent bugs: the debugger localizes one; after
/// "fixing" it, the second session localizes the other (the paper's
/// iterative story for the misnamed-variable case).
#[test]
fn two_bugs_found_in_successive_sessions() {
    let two_bugs = "program t; var r1, r2: integer;
         function f(x: integer): integer;
         begin f := x * 2 + 1 (* bug 1 *) end;
         function g(x: integer): integer;
         begin g := x - 3 (* bug 2: should be x + 3 *) end;
         begin r1 := f(10); r2 := g(10); writeln(r1, ' ', r2) end.";
    let one_bug = two_bugs.replace("x * 2 + 1 (* bug 1 *)", "x * 2");
    let fixed = one_bug.replace("x - 3 (* bug 2: should be x + 3 *)", "x + 3");

    let reference = compile(&fixed).unwrap();

    // Session 1 on the two-bug program.
    let buggy1 = compile(two_bugs).unwrap();
    let p1 = prepare(&buggy1).unwrap();
    let r1 = run_traced(&p1, []).unwrap();
    let mut c1 = ChainOracle::new();
    c1.push(CountingOracle::new(
        ReferenceOracle::new(&reference, []).unwrap(),
    ));
    let out1 = Debugger::new(&p1.transformed.module, &r1.trace, DebugConfig::default())
        .run_program(&r1.tree, &mut c1);
    let DebugResult::BugLocalized { unit: u1, .. } = &out1.result else {
        panic!()
    };
    assert_eq!(u1, "f", "top-down finds the first bug first");

    // Session 2 after fixing f.
    let buggy2 = compile(&one_bug).unwrap();
    let p2 = prepare(&buggy2).unwrap();
    let r2 = run_traced(&p2, []).unwrap();
    let mut c2 = ChainOracle::new();
    c2.push(CountingOracle::new(
        ReferenceOracle::new(&reference, []).unwrap(),
    ));
    let out2 = Debugger::new(&p2.transformed.module, &r2.trace, DebugConfig::default())
        .run_program(&r2.tree, &mut c2);
    let DebugResult::BugLocalized { unit: u2, .. } = &out2.result else {
        panic!()
    };
    assert_eq!(u2, "g");
}

/// The `case` statement interacts correctly with slicing: an arm that
/// does not execute, or whose values do not feed the criterion, is
/// dropped from the dynamic slice.
#[test]
fn case_statement_slices_precisely() {
    let src = "program t; var x, a, b: integer;
         begin
           read(x);
           a := 0; b := 0;
           case x of
             1: a := 10;
             2: b := 20
           else begin a := 1; b := 2 end
           end;
           writeln(a, ' ', b)
         end.";
    let m = compile(src).unwrap();
    let cfg = lower(&m);
    let trace = record_trace(&m, &cfg, [gadt_pascal::value::Value::Int(1)]).unwrap();
    // Slice on a at program end: the executed arm `a := 10` is relevant,
    // the b-chain is not.
    let cx = SliceContext::new(&m, &cfg);
    let crit = SliceCriterion::at_program_end(&m, "a").unwrap();
    let st = static_slice(&cx, &crit);
    let printed = gadt_pascal::pretty::print_slice(&m.program, &st.stmts);
    assert!(printed.contains("a := 10"), "{printed}");
    assert!(!printed.contains("b := 20"), "{printed}");
    // The static slice keeps the case dispatch (control dependence).
    assert!(printed.contains("case x of"), "{printed}");
    // The printed slice runs and preserves `a` for each input.
    let sm = compile(&printed).unwrap();
    for input in [1i64, 2, 7] {
        let mut i1 = gadt_pascal::interp::Interpreter::new(&m);
        i1.set_input([gadt_pascal::value::Value::Int(input)]);
        let mut i2 = gadt_pascal::interp::Interpreter::new(&sm);
        i2.set_input([gadt_pascal::value::Value::Int(input)]);
        assert_eq!(
            i1.run().unwrap().global("a"),
            i2.run().unwrap().global("a"),
            "input {input}\n{printed}"
        );
    }
    let _ = trace;
}

/// Debugging a program whose bug sits inside one `case` arm.
#[test]
fn debugging_a_buggy_case_arm() {
    let src = "program t; var r: integer;
         procedure grade(score: integer; var points: integer);
         begin
           case score div 10 of
             10, 9: points := 4;
             8: points := 3;
             7: points := 1 (* bug: should be 2 *)
           else points := 0
           end
         end;
         begin grade(75, r); writeln(r) end.";
    let fixed_src = src.replace("points := 1 (* bug: should be 2 *)", "points := 2");
    let buggy = compile(src).unwrap();
    let fixed = compile(&fixed_src).unwrap();
    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    assert_eq!(run.output, "1\n");
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = Debugger::new(
        &prepared.transformed.module,
        &run.trace,
        DebugConfig::default(),
    )
    .run_program(&run.tree, &mut chain);
    assert!(
        matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "grade"),
        "{}",
        out.render_transcript()
    );
}

/// `case` statements survive the transformation pipeline (globals inside
/// arms are converted like any other access).
#[test]
fn case_with_global_side_effects_transforms() {
    let src = "program t; var mode, hits: integer;
         procedure bump(k: integer);
         begin
           case k of
             1: hits := hits + 1;
             2: hits := hits + 10
           else hits := hits + 100
           end
         end;
         begin
           hits := 0; mode := 0;
           bump(1); bump(2); bump(3);
           writeln(hits)
         end.";
    let m = compile(src).unwrap();
    let t = gadt_transform::transform(&m).unwrap();
    let o1 = gadt_pascal::interp::Interpreter::new(&m).run().unwrap();
    let o2 = gadt_pascal::interp::Interpreter::new(&t.module)
        .run()
        .unwrap();
    assert_eq!(o1.output_text(), "111\n");
    assert_eq!(o1.output_text(), o2.output_text());
    let cfg = lower(&t.module);
    let (_cg, fx) = gadt_analysis::effects::analyze(&t.module, &cfg);
    let bump = t.module.proc_by_name("bump").unwrap();
    assert!(!fx.has_global_side_effects(bump));
}

/// Tracing an *isolated* unit run (the T-GEN runner's execution mode)
/// produces a well-formed call tree and dependence trace too, so failed
/// test cases can be debugged directly without re-running main.
#[test]
fn isolated_unit_runs_can_be_traced_and_debugged() {
    use gadt_analysis::controldep::ProgramControlDeps;
    use gadt_analysis::dyntrace::DependenceRecorder;
    use gadt_pascal::value::Value;

    let m = compile(gadt_pascal::testprogs::SQRTEST).unwrap();
    let cfg = lower(&m);
    let cd = ProgramControlDeps::compute(&m, &cfg);
    let mut rec = DependenceRecorder::new(&cd);
    let mut interp = gadt_pascal::interp::Interpreter::with_cfg(&m, cfg.clone());
    let computs = m.proc_by_name("computs").unwrap();
    let run = interp
        .run_proc_with(
            computs,
            vec![Value::Int(3), Value::Int(0), Value::Int(0)],
            &mut rec,
        )
        .unwrap();
    assert_eq!(run.outs[0].1, Value::Int(12)); // buggy r1
    assert_eq!(run.outs[1].1, Value::Int(9));

    let trace = rec.finish();
    let tree = gadt_trace::build_tree(&m, &trace);
    // The tree roots at the synthetic main frame with computs below it,
    // and the whole §8 sub-hierarchy underneath.
    let computs_node = tree.find_call(&m, "computs").unwrap();
    assert_eq!(
        tree.render_node(computs_node),
        "computs(In y: 3, Out r1: 12, Out r2: 9)"
    );
    assert!(tree.find_call(&m, "decrement").is_some());

    // And the debugger runs on it: slicing on r1 then descending finds
    // decrement, exactly as in the whole-program session.
    let fixed = compile(gadt_pascal::testprogs::SQRTEST_FIXED).unwrap();
    let mut chain = ChainOracle::new();
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = Debugger::new(&m, &trace, DebugConfig::default()).run(&tree, tree.root, &mut chain);
    assert!(
        matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "decrement"),
        "{}",
        out.render_transcript()
    );
}
