//! Determinism guarantees of the seeded corpus generator.
//!
//! Generated programs are a pure function of `(seed, GenConfig)`: batch
//! generation must be byte-identical regardless of worker-thread count,
//! identical to single-seed generation, and stable across releases — the
//! pinned fingerprint below is the compatibility contract for every
//! stored campaign distribution keyed by corpus fingerprint.

use gadt_repro::corpus::{corpus_fingerprint, generate, generate_batch, GenConfig};

/// Fingerprint of the first 100 default-config programs (seeds 0..100).
/// Changing the generator (or the LCG) invalidates every persisted
/// campaign distribution — bump deliberately, never accidentally.
const SEED0_100_FINGERPRINT: &str = "9cf9374021860fa9";

#[test]
fn batch_generation_is_thread_invariant() {
    let config = GenConfig::default();
    let one = generate_batch(0, 100, &config, 1);
    for threads in [2, 8] {
        let many = generate_batch(0, 100, &config, threads);
        assert_eq!(
            one.len(),
            many.len(),
            "batch length diverged at {threads} threads"
        );
        for (a, b) in one.iter().zip(&many) {
            assert_eq!(a.seed, b.seed, "seed order diverged at {threads} threads");
            assert_eq!(
                a.source, b.source,
                "seed {} source diverged at {threads} threads",
                a.seed
            );
            assert_eq!(
                a.input, b.input,
                "seed {} input diverged at {threads} threads",
                a.seed
            );
        }
        assert_eq!(
            corpus_fingerprint(&one),
            corpus_fingerprint(&many),
            "fingerprint diverged at {threads} threads"
        );
    }
}

#[test]
fn batch_matches_single_seed_generation() {
    let config = GenConfig::default();
    let batch = generate_batch(7, 20, &config, 4);
    for (i, p) in batch.iter().enumerate() {
        let single = generate(7 + i as u64, &config);
        assert_eq!(p, &single, "batch element {i} differs from generate()");
    }
}

#[test]
fn seed0_corpus_fingerprint_is_pinned() {
    let batch = generate_batch(0, 100, &GenConfig::default(), 8);
    assert_eq!(corpus_fingerprint(&batch), SEED0_100_FINGERPRINT);
}

/// Off-default configurations stay deterministic too (they drive the
/// campaign tiers), and distinct configs produce distinct corpora.
#[test]
fn config_variation_is_deterministic_and_distinguishing() {
    let small = GenConfig {
        top_procs: 1,
        max_stmts: 3,
        gotos: false,
        recursion: false,
        ..GenConfig::default()
    };
    let a = generate_batch(0, 10, &small, 2);
    let b = generate_batch(0, 10, &small, 8);
    assert_eq!(a, b, "small config not thread-invariant");
    assert_ne!(
        corpus_fingerprint(&a),
        corpus_fingerprint(&generate_batch(0, 10, &GenConfig::default(), 2)),
        "distinct configs should fingerprint differently"
    );
}
