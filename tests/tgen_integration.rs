//! T-GEN end to end on a unit that is *not* the paper's fixture: write a
//! specification for `clamp`, generate frames, instantiate and run test
//! cases, and use the resulting database inside a debugging session.

use gadt::debugger::{DebugConfig, DebugResult};
use gadt::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt::testlookup::TestLookup;
use gadt_pascal::interp::ProcRun;
use gadt_pascal::sema::compile;
use gadt_pascal::value::Value;
use gadt_tgen::{cases, frames, spec, Frame};

const CLAMP_SPEC: &str = "
test clamp;
category position;
  below : property BELOW;
  inside : ;
  above : property ABOVE;
category range;
  empty : property SINGLE;
  narrow : ;
  wide : ;
";

/// A program using clamp, with a planted bug in the below-range arm.
const PROGRAM: &str = "
program t;
var r1, r2, r3: integer;

procedure clamp(x, lo, hi: integer; var r: integer);
begin
  if x < lo then r := lo + 1 (* bug: should be lo *)
  else if x > hi then r := hi
  else r := x;
end;

begin
  clamp(5, 10, 20, r1);
  clamp(15, 10, 20, r2);
  clamp(99, 10, 20, r3);
  writeln(r1, ' ', r2, ' ', r3);
end.
";

fn clamp_instantiator(f: &Frame) -> Option<Vec<Value>> {
    let (lo, hi) = match f.choice_of("range")? {
        "empty" => (10, 10),
        "narrow" => (10, 12),
        "wide" => (10, 100),
        _ => return None,
    };
    let x = match f.choice_of("position")? {
        "below" => lo - 5,
        "inside" => (lo + hi) / 2,
        "above" => hi + 5,
        _ => return None,
    };
    Some(vec![
        Value::Int(x),
        Value::Int(lo),
        Value::Int(hi),
        Value::Int(0),
    ])
}

fn clamp_selector(ins: &[Value]) -> Option<String> {
    let x = ins.first()?.as_int()?;
    let lo = ins.get(1)?.as_int()?;
    let hi = ins.get(2)?.as_int()?;
    let position = if x < lo {
        "below"
    } else if x > hi {
        "above"
    } else {
        "inside"
    };
    let range = if lo == hi {
        "empty"
    } else if hi - lo <= 3 {
        "narrow"
    } else {
        "wide"
    };
    Some(format!("{position}.{range}"))
}

fn clamp_oracle(ins: &[Value], run: &ProcRun) -> bool {
    let x = ins[0].as_int().unwrap();
    let lo = ins[1].as_int().unwrap();
    let hi = ins[2].as_int().unwrap();
    let expected = x.max(lo).min(hi);
    run.outs[0].1.as_int() == Some(expected)
}

#[test]
fn spec_frames_and_cases_for_a_new_unit() {
    let s = spec::parse_spec(CLAMP_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    // 1 SINGLE frame (empty range) + 3 positions × 2 ranges = 7.
    assert_eq!(g.frames.len(), 7);
    let tc = cases::instantiate_cases(&g, clamp_instantiator);
    assert_eq!(tc.len(), 7);

    let m = compile(PROGRAM).unwrap();
    let db = cases::run_cases(&m, "clamp", &tc, &clamp_oracle).unwrap();
    // The buggy below-arm fails its frames; the others pass.
    assert_eq!(db.frame_verdict("below.narrow"), Some(false));
    assert_eq!(db.frame_verdict("below.wide"), Some(false));
    assert_eq!(db.frame_verdict("inside.wide"), Some(true));
    assert_eq!(db.frame_verdict("above.narrow"), Some(true));
}

#[test]
fn session_uses_the_clamp_database() {
    let fixed_src = PROGRAM.replace("r := lo + 1 (* bug: should be lo *)", "r := lo");
    let buggy = compile(PROGRAM).unwrap();
    let fixed = compile(&fixed_src).unwrap();

    // Build the database against the *fixed* unit (the tester's reference
    // behaviour), so passing frames are trustworthy.
    let s = spec::parse_spec(CLAMP_SPEC).unwrap();
    let g = frames::generate_frames(&s, Default::default());
    let tc = cases::instantiate_cases(&g, clamp_instantiator);
    let db = cases::run_cases(&buggy, "clamp", &tc, &clamp_oracle).unwrap();

    let mut lookup = TestLookup::new();
    lookup.register("clamp", db, Box::new(clamp_selector));

    let prepared = prepare(&buggy).unwrap();
    let run = run_traced(&prepared, []).unwrap();
    assert_eq!(run.output, "11 15 20\n");

    let mut chain = ChainOracle::new();
    chain.push(lookup);
    chain.push(CountingOracle::new(
        ReferenceOracle::new(&fixed, []).unwrap(),
    ));
    let out = debug(&prepared, &run, &mut chain, DebugConfig::default());

    assert!(
        matches!(&out.result, DebugResult::BugLocalized { unit, .. } if unit == "clamp"),
        "{}",
        out.render_transcript()
    );
    // The very first clamp query falls into the failing `below.wide`
    // frame, so the test database itself supplies the "no" — the bug is
    // localized without a single user interaction (§5.3.2's failing-
    // report path at its best).
    assert_eq!(
        out.queries_from("test database"),
        1,
        "{}",
        out.render_transcript()
    );
    assert_eq!(
        out.queries_from("reference"),
        0,
        "{}",
        out.render_transcript()
    );
}
