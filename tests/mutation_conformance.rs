//! Conformance harness for the mutation-based fault-injection engine:
//! a fixed-seed campaign across three known-good testprogs must be
//! localized accurately, deterministically at any thread count, and
//! with slicing saving questions on most mutants.

use gadt::session::Engine;
use gadt_corpus::{
    corpus_campaign, corpus_campaign_with_store, distribution_key, CorpusCampaignConfig,
};
use gadt_mutate::campaign::{run_campaign, CampaignConfig, CampaignProgram};
use gadt_mutate::operators::MutOp;
use gadt_mutate::report::{CampaignSummary, MutantStatus};
use gadt_obs::Recorder;
use gadt_pascal::testprogs;
use gadt_store::{KnowledgeStore, TempDir};
use std::collections::BTreeSet;

fn campaign_programs() -> Vec<CampaignProgram> {
    vec![
        CampaignProgram::new("sqrtest", testprogs::SQRTEST_FIXED),
        CampaignProgram::new("pqr", testprogs::PQR_FIXED),
        CampaignProgram::new("multichain", testprogs::MULTICHAIN),
    ]
}

fn full_config(threads: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 2026,
        max_mutants: 0,
        threads,
        ..CampaignConfig::default()
    }
}

fn run_full(threads: usize) -> CampaignSummary {
    run_campaign(&campaign_programs(), &full_config(threads)).expect("golden programs are good")
}

fn run_full_on(engine: Engine, threads: usize) -> CampaignSummary {
    let config = CampaignConfig {
        engine,
        ..full_config(threads)
    };
    run_campaign(&campaign_programs(), &config).expect("golden programs are good")
}

/// The bytecode VM is a drop-in engine for the campaign: the full-run
/// fingerprint *and* the merged journal are byte-identical to the
/// tree-walker's, at 1, 2, and 8 worker threads. (Verdict keys ignore
/// the engine precisely because of this invariance.)
#[test]
fn full_campaign_is_engine_invariant_at_any_thread_count() {
    let tree = run_full(1);
    let tree_journal = tree.journal().fingerprint();
    for threads in [1, 2, 8] {
        let vm = run_full_on(Engine::Vm, threads);
        assert_eq!(
            tree.fingerprint(),
            vm.fingerprint(),
            "vm fingerprint diverges at {threads} threads"
        );
        assert_eq!(
            tree_journal,
            vm.journal().fingerprint(),
            "vm journal diverges at {threads} threads"
        );
    }
}

/// The headline acceptance bar: ≥ 100 mutants over ≥ 3 programs, ≥ 90%
/// exact-unit localization, and slicing strictly fewer questions than the
/// unpruned search on at least half the localized mutants — all from one
/// fixed seed, byte-identical at 1, 2, and 8 worker threads.
#[test]
fn full_campaign_meets_conformance_bar_and_is_thread_deterministic() {
    let one = run_full(1);
    let two = run_full(2);
    let eight = run_full(8);
    assert_eq!(one.fingerprint(), two.fingerprint(), "1 vs 2 threads");
    assert_eq!(one.fingerprint(), eight.fingerprint(), "1 vs 8 threads");

    let programs: BTreeSet<&str> = one.reports.iter().map(|r| r.program.as_str()).collect();
    assert!(programs.len() >= 3, "campaign spans {programs:?}");
    assert!(one.total() >= 100, "only {} mutants", one.total());

    let accuracy = one.accuracy().expect("campaign localized mutants");
    assert!(
        accuracy >= 0.90,
        "exact-unit localization {:.1}% below the 90% bar:\n{}",
        accuracy * 100.0,
        misses(&one)
    );
    assert!(
        2 * one.strictly_fewer() >= one.localized(),
        "slicing saved questions on only {}/{} mutants",
        one.strictly_fewer(),
        one.localized()
    );
    let with = one.mean_questions_with_slicing().unwrap();
    let without = one.mean_questions_without_slicing().unwrap();
    assert!(
        with < without,
        "mean questions with slicing ({with:.2}) not below without ({without:.2})"
    );
}

/// Omission faults (deleted assignments) historically defeated dynamic
/// slicing: the deleted write leaves no dependence edge, so a naive slice
/// prunes away the faulty unit. The slicer compensates by keeping every
/// candidate writer of an undefined location; this pins that every
/// localized deleted-assignment mutant is blamed on exactly its unit.
#[test]
fn deleted_assignments_are_localized_exactly() {
    let summary = run_full(0);
    for r in &summary.reports {
        if r.op != MutOp::DeleteAssign {
            continue;
        }
        if let MutantStatus::Localized { unit, exact, .. } = &r.status {
            assert!(
                exact,
                "omission fault in `{}` blamed on `{}`: {}",
                r.mutated_unit,
                unit,
                r.render_line()
            );
        }
    }
}

/// The bounded smoke tier `ci.sh` runs: a seeded subsample must stay
/// deterministic and keep the same localization quality.
#[test]
fn bounded_smoke_campaign_is_deterministic_and_accurate() {
    let config = CampaignConfig {
        seed: 2026,
        max_mutants: 50,
        threads: 0,
        ..CampaignConfig::default()
    };
    let a = run_campaign(&campaign_programs(), &config).expect("golden programs are good");
    let b = run_campaign(&campaign_programs(), &config).expect("golden programs are good");
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "smoke tier must be stable"
    );
    assert_eq!(a.total(), 50);
    assert!(a.localized() > 0, "{}", a.render());
    let accuracy = a.accuracy().expect("smoke campaign localized mutants");
    assert!(
        accuracy >= 0.90,
        "smoke accuracy {:.1}%:\n{}",
        accuracy * 100.0,
        misses(&a)
    );
}

/// Corpus tier: the same conformance harness, scaled from three
/// hand-written subjects to a generated corpus worth thousands of
/// mutants. A fixed-seed subsample keeps the runtime bounded while
/// staying far above the 2000-mutant floor.
fn corpus_config(threads: usize) -> CorpusCampaignConfig {
    CorpusCampaignConfig {
        start_seed: 0,
        programs: 24,
        campaign: CampaignConfig {
            seed: 2026,
            max_mutants: 2500,
            threads,
            // Half the default budget: generated mutants that loop forever
            // dominate the runtime, and exhaustion classifies identically.
            max_steps: 100_000,
            ..CampaignConfig::default()
        },
        ..CorpusCampaignConfig::default()
    }
}

/// ≥ 2000 mutants over generated programs, byte-identical at 1, 2, and
/// 8 worker threads, with localization quality in the expected band.
#[test]
fn corpus_tier_scales_and_is_thread_invariant() {
    let one = corpus_campaign(&corpus_config(1)).expect("corpus subjects are golden");
    let two = corpus_campaign(&corpus_config(2)).expect("corpus subjects are golden");
    let eight = corpus_campaign(&corpus_config(8)).expect("corpus subjects are golden");
    assert_eq!(one.fingerprint(), two.fingerprint(), "1 vs 2 threads");
    assert_eq!(one.fingerprint(), eight.fingerprint(), "1 vs 8 threads");

    assert!(one.total() >= 2000, "only {} mutants", one.total());
    let programs: BTreeSet<&str> = one.reports.iter().map(|r| r.program.as_str()).collect();
    assert!(programs.len() >= 20, "campaign spans only {programs:?}");
    assert!(one.localized() >= 100, "only {} localized", one.localized());
    // Generated programs localize less cleanly than the curated
    // testprogs (multi-statement data flow through globals); the band
    // below is the measured baseline with slack, not the 90% bar.
    let accuracy = one.accuracy().expect("corpus campaign localized mutants");
    assert!(
        accuracy >= 0.60,
        "corpus exact-unit localization collapsed to {:.1}%",
        accuracy * 100.0
    );
    assert!(
        one.strictly_fewer() > 0,
        "slicing saved questions on no corpus mutant"
    );
}

/// The store-backed corpus campaign persists its accuracy distribution
/// under the fingerprint-addressed key and journals its headline
/// counters; a second run over the same corpus reuses stored verdicts.
#[test]
fn corpus_campaign_persists_distribution_and_reuses_verdicts() {
    let config = CorpusCampaignConfig {
        start_seed: 0,
        programs: 6,
        campaign: CampaignConfig {
            seed: 2026,
            max_mutants: 400,
            threads: 4,
            max_steps: 100_000,
            ..CampaignConfig::default()
        },
        ..CorpusCampaignConfig::default()
    };
    let dir = TempDir::new("corpus-campaign-store");
    let store = KnowledgeStore::open(dir.path()).unwrap().into_shared();

    let mut rec = Recorder::new();
    let summary =
        corpus_campaign_with_store(&config, &store, &mut rec).expect("corpus subjects are golden");
    let journal = rec.finish();
    assert_eq!(journal.counter("corpus.mutants"), summary.total() as u64);
    assert_eq!(
        journal.counter("corpus.localized"),
        summary.localized() as u64
    );

    // The persisted distribution is addressable and reconciles with the
    // in-memory summary.
    let key = distribution_key(&config);
    let stored = store
        .lock()
        .unwrap()
        .lookup_verdict(&key)
        .expect("distribution persisted");
    let int = |field: &str| stored.get(field).and_then(|j| j.as_int()).unwrap();
    assert_eq!(int("mutants"), summary.total() as i64);
    assert_eq!(int("localized"), summary.localized() as i64);
    assert_eq!(int("exact"), summary.exact() as i64);

    // Re-running the identical campaign against the same store answers
    // from persisted verdicts and reproduces the summary bit-for-bit.
    let before_hits = store.lock().unwrap().verdict_hits();
    let mut rec2 = Recorder::disabled();
    let again =
        corpus_campaign_with_store(&config, &store, &mut rec2).expect("corpus subjects are golden");
    assert_eq!(
        again.fingerprint(),
        summary.fingerprint(),
        "cached re-run diverged"
    );
    assert!(
        store.lock().unwrap().verdict_hits() > before_hits,
        "second run did not reuse stored verdicts"
    );
}

fn misses(summary: &CampaignSummary) -> String {
    summary
        .reports
        .iter()
        .filter(|r| matches!(r.status, MutantStatus::Localized { exact: false, .. }))
        .map(|r| r.render_line())
        .collect::<Vec<_>>()
        .join("\n")
}
