//! Minimized regressions surfaced by the differential fuzzing harness.
//!
//! Each `.pas` file under `tests/corpus_regressions/` is a shrunk
//! reproducer of a bug the corpus fuzzer found (a header comment in each
//! file records the failure mode and the fix). The full differential
//! check — original vs transformed execution plus slice-replay
//! soundness — must now report every one of them clean, and the
//! pretty-printed round trip must preserve behavior exactly.

use gadt_repro::corpus::{check_program, DiffConfig, GeneratedProgram};
use gadt_repro::pascal::interp::{Interpreter, Limits};
use gadt_repro::pascal::pretty::print_program;
use gadt_repro::pascal::sema::compile;
use std::path::PathBuf;

fn regression_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_regressions");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("regression dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "pas"))
        .collect();
    files.sort();
    files
}

fn load(path: &PathBuf) -> GeneratedProgram {
    GeneratedProgram {
        seed: 0,
        name: path.file_stem().unwrap().to_string_lossy().into_owned(),
        source: std::fs::read_to_string(path).expect("read regression source"),
        input: Vec::new(),
    }
}

/// Every minimized reproducer passes the full differential check,
/// including slice-replay soundness.
#[test]
fn regressions_are_clean() {
    let files = regression_files();
    assert!(
        files.len() >= 5,
        "expected at least 5 regression programs, found {}",
        files.len()
    );
    for path in files {
        let p = load(&path);
        let v = check_program(&p, &DiffConfig::default());
        assert!(
            v.is_clean(),
            "{}: {:?}",
            p.name,
            v.divergence
                .map(|d| format!("{} at {}: {}", d.kind, d.stage, d.detail))
        );
    }
}

/// The repeat-fuel reproducer exercises the replay closure for real: the
/// plain localization slice of `f0` omits the `g0 := 70` exit driver
/// (nothing the criterion depends on), and `close_for_replay` restores it
/// through the structural-enclosure rule.
#[test]
fn replay_closure_recovers_loop_exit_driver() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_regressions");
    let p = load(&dir.join("fuel_repeat_slice.pas"));
    let module = compile(&p.source).expect("compiles");
    let prepared = gadt_repro::debugging::session::prepare(&module).expect("transforms");
    let traced = gadt_repro::debugging::session::run_traced_limited(
        &prepared,
        std::iter::empty(),
        Limits {
            max_steps: 2_000_000,
            ..Limits::default()
        },
    )
    .expect("traced run");
    let tm = &prepared.transformed.module;
    let mut slice =
        gadt_repro::analysis::dynamic_slice_final(tm, &traced.trace, "f0").expect("f0 is written");
    let before = gadt_repro::pascal::pretty::print_slice(&tm.program, &slice.stmts);
    assert!(
        !before.contains("g0 := 70"),
        "localization slice should omit the exit driver:\n{before}"
    );
    gadt_repro::analysis::close_for_replay(tm, &traced.trace, &mut slice);
    let after = gadt_repro::pascal::pretty::print_slice(&tm.program, &slice.stmts);
    assert!(
        after.contains("g0 := 70"),
        "replay closure must restore the exit driver:\n{after}"
    );
}

/// The goto reproducer exercises the jump-seeding rule: the plain slice
/// of the for-loop control variable drops the `goto` that exits the loop
/// early, and `close_for_replay` restores it (with its guard).
#[test]
fn replay_closure_keeps_fired_gotos() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus_regressions");
    let p = load(&dir.join("goto_exits_for.pas"));
    let module = compile(&p.source).expect("compiles");
    let prepared = gadt_repro::debugging::session::prepare(&module).expect("transforms");
    let traced = gadt_repro::debugging::session::run_traced_limited(
        &prepared,
        std::iter::empty(),
        Limits {
            max_steps: 2_000_000,
            ..Limits::default()
        },
    )
    .expect("traced run");
    let tm = &prepared.transformed.module;
    let mut slice =
        gadt_repro::analysis::dynamic_slice_final(tm, &traced.trace, "i0").expect("i0 is written");
    let before = gadt_repro::pascal::pretty::print_slice(&tm.program, &slice.stmts);
    assert!(
        !before.contains("goto 1"),
        "localization slice should omit the goto:\n{before}"
    );
    gadt_repro::analysis::close_for_replay(tm, &traced.trace, &mut slice);
    let after = gadt_repro::pascal::pretty::print_slice(&tm.program, &slice.stmts);
    assert!(
        after.contains("goto 1"),
        "replay closure must keep the fired goto:\n{after}"
    );
}

/// Pretty-printing and recompiling each reproducer executes identically —
/// guards the unary-minus parenthesization fix (a printed `2 + -g0` did
/// not parse; `-a * b` re-parsed as `-(a * b)`).
#[test]
fn printed_round_trip_preserves_behavior() {
    for path in regression_files() {
        let p = load(&path);
        let run = |src: &str| {
            let m = compile(src).unwrap_or_else(|e| panic!("{}: compile: {e}", p.name));
            let mut i = Interpreter::new(&m);
            i.set_limits(Limits {
                max_steps: 2_000_000,
                ..Limits::default()
            });
            let out = i.run().unwrap_or_else(|e| panic!("{}: run: {e}", p.name));
            out.output_text().to_string()
        };
        let module = compile(&p.source).expect("regression source compiles");
        let printed = print_program(&module.program);
        assert_eq!(
            run(&p.source),
            run(&printed),
            "{}: printed round trip diverged",
            p.name
        );
    }
}
