//! # gadt-repro
//!
//! Umbrella crate for the reproduction of *Generalized Algorithmic
//! Debugging and Testing* (Fritzson, Gyimóthy, Kamkar, Shahmehri; PLDI
//! 1991). Re-exports every subsystem:
//!
//! * [`pascal`] — Pascal-subset front end and interpreter;
//! * [`analysis`] — flow analysis, static and dynamic slicing;
//! * [`transform`] — the §6 side-effect-removing transformations;
//! * [`trace`] — execution trees;
//! * [`tgen`] — the T-GEN category-partition test generator;
//! * [`debugging`] — oracles and the GADT debugger itself.
//!
//! See the crate-level docs of [`debugging`] (the `gadt` crate) for a
//! quickstart, and the repository's `examples/` directory for runnable
//! walkthroughs of the paper's figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gadt as debugging;
pub use gadt_analysis as analysis;
pub use gadt_pascal as pascal;
pub use gadt_tgen as tgen;
pub use gadt_trace as trace;
pub use gadt_transform as transform;
