//! # gadt-repro
//!
//! Umbrella crate for the reproduction of *Generalized Algorithmic
//! Debugging and Testing* (Fritzson, Gyimóthy, Kamkar, Shahmehri; PLDI
//! 1991). Re-exports every subsystem:
//!
//! * [`pascal`] — Pascal-subset front end and interpreter;
//! * [`analysis`] — flow analysis, static and dynamic slicing;
//! * [`transform`] — the §6 side-effect-removing transformations;
//! * [`trace`] — execution trees;
//! * [`tgen`] — the T-GEN category-partition test generator;
//! * [`debugging`] — oracles and the GADT debugger itself;
//! * [`mutate`] — mutation-based localization conformance campaigns;
//! * [`exec`] — the deterministic parallel batch executor;
//! * [`obs`] — the structured observability layer (spans, counters,
//!   journals, sinks);
//! * [`store`] — the persistent crash-safe knowledge store (WAL +
//!   snapshot) that carries test reports, oracle answers and campaign
//!   verdicts across sessions (attach with [`Compiled::with_store`]).
//!
//! The [`Gadt`] facade chains the whole pipeline in one expression:
//!
//! ```no_run
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gadt_repro::{Gadt, testprogs};
//! use gadt_repro::debugging::oracle::ChainOracle;
//!
//! let mut oracle = ChainOracle::new();
//! let session = Gadt::compile(testprogs::SQRTEST)?
//!     .transform()?
//!     .trace(vec![vec![]])?
//!     .debug(&mut oracle)?;
//! println!("{}", session.outcome.render_transcript());
//! println!("{}", session.journal.render_summary());
//! # Ok(())
//! # }
//! ```
//!
//! See the crate-level docs of [`debugging`] (the `gadt` crate) for a
//! quickstart, and the repository's `examples/` directory for runnable
//! walkthroughs of the paper's figures.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod facade;

pub use gadt as debugging;
pub use gadt_analysis as analysis;
pub use gadt_corpus as corpus;
pub use gadt_exec as exec;
pub use gadt_mutate as mutate;
pub use gadt_obs as obs;
pub use gadt_pascal as pascal;
pub use gadt_store as store;
pub use gadt_tgen as tgen;
pub use gadt_trace as trace;
pub use gadt_transform as transform;
pub use gadt_vm as vm;

pub use facade::{Compiled, Gadt, Prepared, Session, Traced};

pub use gadt::debugger::{DebugConfig, DebugOutcome, DebugResult, Strategy};
pub use gadt::error::{Error, Phase, Result};
pub use gadt::handle::{DebugHandle, Question, Step, Verdict};
pub use gadt::session::Engine;
pub use gadt_pascal::testprogs;

/// Everything most callers need, in one import:
/// `use gadt_repro::prelude::*;`.
pub mod prelude {
    pub use crate::facade::{Compiled, Gadt, Prepared, Session, Traced};
    pub use gadt::debugger::{DebugConfig, DebugOutcome, DebugResult, Strategy};
    pub use gadt::error::{Error, Phase, Result};
    pub use gadt::handle::{DebugHandle, Question, Step, Verdict};
    pub use gadt::oracle::{Answer, AssertionOracle, ChainOracle, GoldenOracle, ReferenceOracle};
    pub use gadt::session::{BatchTraced, Engine, PhaseTimings, PreparedProgram, TracedRun};
    pub use gadt_corpus::{DiffConfig, GenConfig, GeneratedProgram};
    pub use gadt_obs::{Journal, JsonLinesSink, MemorySink, Recorder, Sink};
    pub use gadt_pascal::value::Value;
    pub use gadt_store::{KnowledgeStore, SharedStore, StoredAnswer};
}
