//! The one-import pipeline facade.
//!
//! [`Gadt`] chains the pipeline's phases as a typestate builder —
//! compile → transform → trace → debug — wrapping the free functions of
//! [`gadt::session`] and threading one observability
//! [`gadt_obs::Recorder`] through every phase, so a finished
//! chain hands back both the debugging outcome and the structured
//! journal of everything that happened:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gadt_repro::{Gadt, testprogs, DebugResult};
//! use gadt_repro::debugging::oracle::{ChainOracle, ReferenceOracle};
//!
//! let fixed = gadt_repro::pascal::sema::compile(testprogs::SQRTEST_FIXED)?;
//! let mut oracle = ChainOracle::new();
//! oracle.push(ReferenceOracle::new(&fixed, [])?);
//!
//! let session = Gadt::compile(testprogs::SQRTEST)?
//!     .transform()?
//!     .trace(vec![vec![]])?
//!     .debug(&mut oracle)?;
//!
//! assert!(matches!(session.outcome.result,
//!     DebugResult::BugLocalized { ref unit, .. } if unit == "decrement"));
//! assert_eq!(session.journal.counter("debug.questions"),
//!            session.outcome.total_queries() as u64);
//! # Ok(())
//! # }
//! ```

use gadt::debugger::{DebugConfig, DebugOutcome};
use gadt::error::{Error, Phase, Result};
use gadt::oracle::ChainOracle;
use gadt::session::{self, PreparedProgram, TracedRun};
use gadt_obs::{Journal, Recorder};
use gadt_pascal::sema::Module;
use gadt_pascal::value::Value;

/// Entry point of the facade: start a pipeline with [`Gadt::compile`].
#[derive(Debug)]
pub struct Gadt;

impl Gadt {
    /// Compiles Pascal source, yielding the first pipeline stage.
    ///
    /// # Errors
    /// A [`Phase::Compile`] error on lex/parse/type failures.
    pub fn compile(source: &str) -> Result<Compiled> {
        let module = gadt_pascal::sema::compile(source).map_err(Error::from)?;
        Ok(Compiled {
            module,
            threads: 0,
            rec: Recorder::new(),
        })
    }

    /// Starts the pipeline from an already-compiled module.
    pub fn from_module(module: Module) -> Compiled {
        Compiled {
            module,
            threads: 0,
            rec: Recorder::new(),
        }
    }
}

/// A compiled program, ready for the §6 transformation.
#[derive(Debug)]
pub struct Compiled {
    /// The compiled module.
    pub module: Module,
    threads: usize,
    rec: Recorder,
}

impl Compiled {
    /// Sets the worker-thread count used by later batch phases
    /// (`0` = all cores, the default).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Phase I: removes global side effects and non-local gotos,
    /// journaling round and growth counters under a `transform` span.
    ///
    /// # Errors
    /// A [`Phase::Transform`] error when a transformation fails or does
    /// not converge.
    pub fn transform(mut self) -> Result<Prepared> {
        let prepared = session::prepare_observed(&self.module, &mut self.rec)
            .map_err(|e| Error::from_diagnostic(Phase::Transform, e))?;
        Ok(Prepared {
            module: self.module,
            prepared,
            threads: self.threads,
            rec: self.rec,
        })
    }
}

/// A transformed program, ready for traced execution.
#[derive(Debug)]
pub struct Prepared {
    /// The original (untransformed) module.
    pub module: Module,
    /// Phase I output: transformed module, mapping, CFG.
    pub prepared: PreparedProgram,
    threads: usize,
    rec: Recorder,
}

impl Prepared {
    /// Phase II: traces every input of the batch in parallel (input
    /// order preserved; the journal is thread-count invariant).
    ///
    /// # Errors
    /// A [`Phase::Trace`] error from the lowest-indexed failing input.
    pub fn trace(mut self, inputs: Vec<Vec<Value>>) -> Result<Traced> {
        let runs =
            session::run_traced_batch_observed(&self.prepared, inputs, self.threads, &mut self.rec)
                .map_err(Error::from)?;
        Ok(Traced {
            prepared: self.prepared,
            runs,
            threads: self.threads,
            rec: self.rec,
        })
    }
}

/// Traced executions, ready for debugging.
#[derive(Debug)]
pub struct Traced {
    /// Phase I output (shared by every run).
    pub prepared: PreparedProgram,
    /// One traced run per input, in input order.
    pub runs: Vec<TracedRun>,
    threads: usize,
    rec: Recorder,
}

impl Traced {
    /// Phase III: debugs the first traced run with the default
    /// configuration (top-down, slicing on).
    ///
    /// # Errors
    /// A [`Phase::Debug`] error when the chain holds no traced runs.
    pub fn debug(self, oracle: &mut ChainOracle<'_>) -> Result<Session> {
        self.debug_run(0, oracle, DebugConfig::default())
    }

    /// Phase III on a chosen run and configuration.
    ///
    /// # Errors
    /// A [`Phase::Debug`] error when `index` is out of range.
    pub fn debug_run(
        mut self,
        index: usize,
        oracle: &mut ChainOracle<'_>,
        config: DebugConfig,
    ) -> Result<Session> {
        let run = self.runs.get(index).ok_or_else(|| {
            Error::new(
                Phase::Debug,
                format!(
                    "no traced run at index {index} ({} available)",
                    self.runs.len()
                ),
            )
        })?;
        let outcome = session::debug_observed(&self.prepared, run, oracle, config, &mut self.rec);
        let _ = self.threads;
        Ok(Session {
            prepared: self.prepared,
            runs: self.runs,
            outcome,
            journal: self.rec.finish(),
        })
    }

    /// Ends the chain without a debug phase, yielding the runs and the
    /// journal of the phases so far.
    pub fn finish(self) -> (Vec<TracedRun>, Journal) {
        (self.runs, self.rec.finish())
    }
}

/// A finished facade chain: outcome plus the full pipeline journal.
#[derive(Debug)]
pub struct Session {
    /// Phase I output.
    pub prepared: PreparedProgram,
    /// The traced runs of Phase II.
    pub runs: Vec<TracedRun>,
    /// The debugging verdict and transcript.
    pub outcome: DebugOutcome,
    /// Spans, events and counters of every phase the chain ran.
    pub journal: Journal,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt::debugger::DebugResult;
    use gadt::oracle::ReferenceOracle;
    use gadt_pascal::testprogs;

    #[test]
    fn facade_runs_the_paper_pipeline() {
        let fixed = gadt_pascal::sema::compile(testprogs::SQRTEST_FIXED).unwrap();
        let mut oracle = ChainOracle::new();
        oracle.push(ReferenceOracle::new(&fixed, []).unwrap());
        let session = Gadt::compile(testprogs::SQRTEST)
            .unwrap()
            .threads(2)
            .transform()
            .unwrap()
            .trace(vec![vec![]])
            .unwrap()
            .debug(&mut oracle)
            .unwrap();
        let DebugResult::BugLocalized { unit, .. } = &session.outcome.result else {
            panic!("{}", session.outcome.render_transcript());
        };
        assert_eq!(unit, "decrement");
        assert_eq!(session.journal.counter("trace.runs"), 1);
        assert_eq!(
            session.journal.counter("debug.questions"),
            session.outcome.total_queries() as u64
        );
        assert_eq!(
            session.journal.counter("debug.slices"),
            session.outcome.slices_taken as u64
        );
    }

    #[test]
    fn compile_errors_carry_the_phase() {
        let err = Gadt::compile("program x; begin y := 1 end.").unwrap_err();
        assert_eq!(err.phase(), Phase::Compile);
        assert!(err.diagnostic().is_some());
    }

    #[test]
    fn debugging_without_runs_is_a_debug_phase_error() {
        let traced = Gadt::compile("program t; begin writeln(1) end.")
            .unwrap()
            .transform()
            .unwrap()
            .trace(vec![])
            .unwrap();
        let mut oracle = ChainOracle::new();
        let err = traced.debug(&mut oracle).unwrap_err();
        assert_eq!(err.phase(), Phase::Debug);
    }

    #[test]
    fn finish_returns_runs_and_journal() {
        let (runs, journal) = Gadt::compile("program t; begin writeln(7) end.")
            .unwrap()
            .transform()
            .unwrap()
            .trace(vec![vec![], vec![]])
            .unwrap()
            .finish();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].output, "7\n");
        assert_eq!(journal.counter("trace.runs"), 2);
        assert!(journal.phase_timings().trace > std::time::Duration::ZERO);
    }
}
