//! The one-import pipeline facade.
//!
//! [`Gadt`] chains the pipeline's phases as a typestate builder —
//! compile → transform → trace → debug — wrapping the free functions of
//! [`gadt::session`] and threading one observability
//! [`gadt_obs::Recorder`] through every phase, so a finished
//! chain hands back both the debugging outcome and the structured
//! journal of everything that happened:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use gadt_repro::{Gadt, testprogs, DebugResult};
//! use gadt_repro::debugging::oracle::{ChainOracle, ReferenceOracle};
//!
//! let fixed = gadt_repro::pascal::sema::compile(testprogs::SQRTEST_FIXED)?;
//! let mut oracle = ChainOracle::new();
//! oracle.push(ReferenceOracle::new(&fixed, [])?);
//!
//! let session = Gadt::compile(testprogs::SQRTEST)?
//!     .transform()?
//!     .trace(vec![vec![]])?
//!     .debug(&mut oracle)?;
//!
//! assert!(matches!(session.outcome.result,
//!     DebugResult::BugLocalized { ref unit, .. } if unit == "decrement"));
//! assert_eq!(session.journal.counter("debug.questions"),
//!            session.outcome.total_queries() as u64);
//! # Ok(())
//! # }
//! ```

use gadt::debugger::{DebugConfig, DebugOutcome, Strategy};
use gadt::error::{Error, Phase, Result};
use gadt::handle::DebugHandle;
use gadt::oracle::ChainOracle;
use gadt::session::{self, Engine, PreparedProgram, TracedRun};
use gadt::stored::{StoreProbe, StoredKnowledgeOracle};
use gadt::strategy::AnswerProbe;
use gadt_obs::{Journal, Recorder};
use gadt_pascal::sema::Module;
use gadt_pascal::value::Value;
use gadt_store::{KnowledgeStore, SharedStore};
use std::path::Path;

/// Entry point of the facade: start a pipeline with [`Gadt::compile`].
#[derive(Debug)]
pub struct Gadt;

impl Gadt {
    /// Compiles Pascal source, yielding the first pipeline stage.
    ///
    /// # Errors
    /// A [`Phase::Compile`] error on lex/parse/type failures.
    pub fn compile(source: &str) -> Result<Compiled> {
        let module = gadt_pascal::sema::compile(source).map_err(Error::from)?;
        Ok(Compiled {
            module,
            threads: 0,
            engine: Engine::default(),
            strategy: Strategy::default(),
            rec: Recorder::new(),
            store: None,
        })
    }

    /// Starts the pipeline from an already-compiled module.
    pub fn from_module(module: Module) -> Compiled {
        Compiled {
            module,
            threads: 0,
            engine: Engine::default(),
            strategy: Strategy::default(),
            rec: Recorder::new(),
            store: None,
        }
    }
}

/// A compiled program, ready for the §6 transformation.
#[derive(Debug)]
pub struct Compiled {
    /// The compiled module.
    pub module: Module,
    threads: usize,
    engine: Engine,
    strategy: Strategy,
    rec: Recorder,
    store: Option<SharedStore>,
}

impl Compiled {
    /// Sets the worker-thread count used by later batch phases
    /// (`0` = all cores, the default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Deprecated name for [`Compiled::with_threads`] (every facade
    /// builder method is `with_*`; kept one release for migration).
    #[deprecated(since = "0.2.0", note = "renamed to `with_threads`")]
    #[must_use]
    pub fn threads(self, threads: usize) -> Self {
        self.with_threads(threads)
    }

    /// Selects the execution engine for the trace phase:
    /// [`Engine::Vm`] (the compiled bytecode VM, the default — compiled
    /// once and shared across batch workers) or [`Engine::TreeWalker`]
    /// (the tree-walking reference interpreter, retained for
    /// differential verification — same traces, slices, and journals).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the traversal strategy the debug phase uses when no
    /// explicit [`DebugConfig`] is passed (the default is
    /// [`Strategy::TopDown`], the paper's traversal). With
    /// [`Strategy::KnowledgeWeighted`] and an attached store, question
    /// selection weighs store-answerable nodes as free.
    #[must_use]
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Attaches a persistent knowledge store at `path` (created if
    /// absent, recovered if a previous session crashed). The debug phase
    /// then answers queries from stored knowledge before consulting any
    /// live oracle, persists every new definite answer, and journals
    /// `store.hits` / `store.misses` / `store.recovered_lines`.
    ///
    /// # Errors
    /// A [`Phase::Store`] error when the store cannot be opened.
    pub fn with_store(mut self, path: impl AsRef<Path>) -> Result<Self> {
        let store = KnowledgeStore::open(path.as_ref()).map_err(|e| {
            Error::new(
                Phase::Store,
                format!(
                    "cannot open knowledge store {}: {e}",
                    path.as_ref().display()
                ),
            )
        })?;
        self.store = Some(store.into_shared());
        Ok(self)
    }

    /// Attaches an already-open shared store handle — the caller keeps a
    /// clone, e.g. to persist a `TestDb` into the same store.
    #[must_use]
    pub fn with_shared_store(mut self, store: SharedStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Phase I: removes global side effects and non-local gotos,
    /// journaling round and growth counters under a `transform` span.
    ///
    /// # Errors
    /// A [`Phase::Transform`] error when a transformation fails or does
    /// not converge.
    pub fn transform(mut self) -> Result<Prepared> {
        let prepared = session::prepare_observed(&self.module, &mut self.rec)
            .map_err(|e| Error::from_diagnostic(Phase::Transform, e))?
            .with_engine(self.engine);
        Ok(Prepared {
            module: self.module,
            prepared,
            threads: self.threads,
            strategy: self.strategy,
            rec: self.rec,
            store: self.store,
        })
    }
}

/// A transformed program, ready for traced execution.
#[derive(Debug)]
pub struct Prepared {
    /// The original (untransformed) module.
    pub module: Module,
    /// Phase I output: transformed module, mapping, CFG.
    pub prepared: PreparedProgram,
    threads: usize,
    strategy: Strategy,
    rec: Recorder,
    store: Option<SharedStore>,
}

impl Prepared {
    /// Phase II: traces every input of the batch in parallel (input
    /// order preserved; the journal is thread-count invariant).
    ///
    /// # Errors
    /// A [`Phase::Trace`] error from the lowest-indexed failing input.
    pub fn trace(mut self, inputs: Vec<Vec<Value>>) -> Result<Traced> {
        let runs =
            session::run_traced_batch_observed(&self.prepared, inputs, self.threads, &mut self.rec)
                .map_err(Error::from)?;
        Ok(Traced {
            prepared: self.prepared,
            runs,
            threads: self.threads,
            strategy: self.strategy,
            rec: self.rec,
            store: self.store,
        })
    }
}

/// Traced executions, ready for debugging.
#[derive(Debug)]
pub struct Traced {
    /// Phase I output (shared by every run).
    pub prepared: PreparedProgram,
    /// One traced run per input, in input order.
    pub runs: Vec<TracedRun>,
    threads: usize,
    strategy: Strategy,
    rec: Recorder,
    store: Option<SharedStore>,
}

impl Traced {
    /// Phase III: debugs the first traced run with the chain's selected
    /// strategy ([`Compiled::with_strategy`], default top-down) and
    /// slicing on.
    ///
    /// # Errors
    /// A [`Phase::Debug`] error when the chain holds no traced runs.
    pub fn debug(self, oracle: &mut ChainOracle<'_>) -> Result<Session> {
        let config = DebugConfig {
            strategy: self.strategy,
            ..DebugConfig::default()
        };
        self.debug_run(0, oracle, config)
    }

    /// Phase III on a chosen run and configuration.
    ///
    /// # Errors
    /// A [`Phase::Debug`] error when `index` is out of range.
    pub fn debug_run(
        mut self,
        index: usize,
        oracle: &mut ChainOracle<'_>,
        config: DebugConfig,
    ) -> Result<Session> {
        let run = self.runs.get(index).ok_or_else(|| {
            Error::new(
                Phase::Debug,
                format!(
                    "no traced run at index {index} ({} available)",
                    self.runs.len()
                ),
            )
        })?;
        let mut probe: Option<Box<dyn AnswerProbe>> = None;
        if let Some(store) = &self.store {
            // Stored knowledge answers first; every new definite answer
            // is persisted for the next session.
            oracle.push_front(StoredKnowledgeOracle::new(store.clone()));
            oracle.persist_answers_to(store.clone());
            if config.strategy == Strategy::KnowledgeWeighted {
                // Weight questions by what the store can already answer;
                // the probe reads without moving hit/miss counters.
                probe = Some(Box::new(StoreProbe::new(store.clone())));
            }
        }
        let outcome = session::debug_observed_with_probe(
            &self.prepared,
            run,
            oracle,
            config,
            probe,
            &mut self.rec,
        );
        if let Some(store) = &self.store {
            if let Some(e) = oracle.take_persist_error() {
                return Err(Error::new(
                    Phase::Store,
                    format!("persisting oracle answers failed: {e}"),
                ));
            }
            let mut guard = store.lock().expect("store mutex poisoned");
            guard.sync().map_err(|e| {
                Error::new(Phase::Store, format!("knowledge store sync failed: {e}"))
            })?;
            self.rec.add("store.hits", guard.answer_hits());
            self.rec.add("store.misses", guard.answer_misses());
            self.rec.add(
                "store.recovered_lines",
                guard.recovery().recovered_lines() as u64,
            );
        }
        let _ = self.threads;
        Ok(Session {
            prepared: self.prepared,
            runs: self.runs,
            outcome,
            journal: self.rec.finish(),
            store: self.store,
        })
    }

    /// Starts an owned, resumable debugging session over one traced run
    /// — the server-side alternative to [`Traced::debug`]: instead of
    /// blocking on an oracle callback, the returned [`DebugHandle`] is
    /// pumped one `next_question()` / `answer(verdict)` pair at a time
    /// and can be parked between requests. The chain itself is not
    /// consumed; transparency rendering (§6.1) is wired in.
    ///
    /// # Errors
    /// A [`Phase::Debug`] error when `index` is out of range.
    pub fn debug_handle(&self, index: usize, config: DebugConfig) -> Result<DebugHandle> {
        let run = self.runs.get(index).ok_or_else(|| {
            Error::new(
                Phase::Debug,
                format!(
                    "no traced run at index {index} ({} available)",
                    self.runs.len()
                ),
            )
        })?;
        let mut handle = DebugHandle::new(
            std::sync::Arc::new(self.prepared.transformed.module.clone()),
            std::sync::Arc::new(run.trace.clone()),
            Some(self.prepared.transformed.mapping.clone()),
            run.tree.clone(),
            config,
        );
        if config.strategy == Strategy::KnowledgeWeighted {
            if let Some(store) = &self.store {
                handle = handle.with_probe(Box::new(StoreProbe::new(store.clone())));
            }
        }
        Ok(handle)
    }

    /// Ends the chain without a debug phase, yielding the runs and the
    /// journal of the phases so far.
    pub fn finish(self) -> (Vec<TracedRun>, Journal) {
        (self.runs, self.rec.finish())
    }
}

/// A finished facade chain: outcome plus the full pipeline journal.
#[derive(Debug)]
pub struct Session {
    /// Phase I output.
    pub prepared: PreparedProgram,
    /// The traced runs of Phase II.
    pub runs: Vec<TracedRun>,
    /// The debugging verdict and transcript.
    pub outcome: DebugOutcome,
    /// Spans, events and counters of every phase the chain ran.
    pub journal: Journal,
    /// The knowledge store the session wrote through, when one was
    /// attached with [`Compiled::with_store`].
    pub store: Option<SharedStore>,
}

impl Session {
    /// The engine that executed the traced runs (provenance echo).
    pub fn engine(&self) -> Engine {
        self.prepared.engine()
    }

    /// The interpreter limits each traced run executed under, in run
    /// order (provenance echo for server responses).
    pub fn limits(&self) -> Vec<gadt_pascal::interp::Limits> {
        self.runs.iter().map(|r| r.limits).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gadt::debugger::DebugResult;
    use gadt::oracle::ReferenceOracle;
    use gadt_pascal::testprogs;

    #[test]
    fn facade_runs_the_paper_pipeline() {
        let fixed = gadt_pascal::sema::compile(testprogs::SQRTEST_FIXED).unwrap();
        let mut oracle = ChainOracle::new();
        oracle.push(ReferenceOracle::new(&fixed, []).unwrap());
        let session = Gadt::compile(testprogs::SQRTEST)
            .unwrap()
            .with_threads(2)
            .transform()
            .unwrap()
            .trace(vec![vec![]])
            .unwrap()
            .debug(&mut oracle)
            .unwrap();
        let DebugResult::BugLocalized { unit, .. } = &session.outcome.result else {
            panic!("{}", session.outcome.render_transcript());
        };
        assert_eq!(unit, "decrement");
        assert_eq!(session.journal.counter("trace.runs"), 1);
        assert_eq!(
            session.journal.counter("debug.questions"),
            session.outcome.total_queries() as u64
        );
        assert_eq!(
            session.journal.counter("debug.slices"),
            session.outcome.slices_taken as u64
        );
    }

    #[test]
    fn with_store_persists_and_replays_the_session() {
        let dir = gadt_store::TempDir::new("facade-store");
        let fixed = gadt_pascal::sema::compile(testprogs::SQRTEST_FIXED).unwrap();

        // Session 1: the reference answers; everything is persisted.
        let mut oracle = ChainOracle::new();
        oracle.push(ReferenceOracle::new(&fixed, []).unwrap());
        let s1 = Gadt::compile(testprogs::SQRTEST)
            .unwrap()
            .with_store(dir.path())
            .unwrap()
            .transform()
            .unwrap()
            .trace(vec![vec![]])
            .unwrap()
            .debug(&mut oracle)
            .unwrap();
        assert!(matches!(&s1.outcome.result,
            DebugResult::BugLocalized { unit, .. } if unit == "decrement"));
        assert!(s1.journal.counter("store.misses") > 0);
        assert_eq!(s1.journal.counter("store.hits"), 0);
        let fp1 = s1
            .store
            .as_ref()
            .unwrap()
            .lock()
            .unwrap()
            .disk_fingerprint()
            .unwrap();

        // Session 2: the store answers everything; a consulted "user"
        // would panic. The store's bytes must not change.
        let mut replay = ChainOracle::new();
        replay.push(gadt::oracle::FnOracle::new(
            "user",
            |_m: &Module, _t: &gadt_trace::ExecTree, _n| {
                panic!("replayed session must not consult the user")
            },
        ));
        let s2 = Gadt::compile(testprogs::SQRTEST)
            .unwrap()
            .with_store(dir.path())
            .unwrap()
            .transform()
            .unwrap()
            .trace(vec![vec![]])
            .unwrap()
            .debug(&mut replay)
            .unwrap();
        assert!(matches!(&s2.outcome.result,
            DebugResult::BugLocalized { unit, .. } if unit == "decrement"));
        assert_eq!(s2.journal.counter("store.misses"), 0);
        assert!(s2.journal.counter("store.hits") > 0);
        for entry in &s2.outcome.transcript {
            assert_eq!(entry.source, gadt::STORED_SOURCE, "unit {}", entry.unit);
        }
        let fp2 = s2
            .store
            .as_ref()
            .unwrap()
            .lock()
            .unwrap()
            .disk_fingerprint()
            .unwrap();
        assert_eq!(fp1, fp2, "replay must leave the store byte-identical");
    }

    #[test]
    fn debug_handle_matches_the_callback_path_and_echoes_provenance() {
        use gadt::oracle::Oracle;
        let fixed = gadt_pascal::sema::compile(testprogs::SQRTEST_FIXED).unwrap();
        let traced = Gadt::compile(testprogs::SQRTEST)
            .unwrap()
            .transform()
            .unwrap()
            .trace(vec![vec![]])
            .unwrap();

        // Pump the owned handle with the reference oracle.
        let mut reference = ReferenceOracle::new(&fixed, []).unwrap();
        let mut handle = traced.debug_handle(0, DebugConfig::default()).unwrap();
        while let Some(q) = handle.next_question() {
            let node = q.node;
            let verdict = reference.judge(&traced.prepared.transformed.module, handle.tree(), node);
            handle.answer_from(verdict, reference.source_name());
        }
        let pumped = handle.into_outcome();

        // The synchronous callback path over the same traced chain.
        let mut oracle = ChainOracle::new();
        oracle.push(ReferenceOracle::new(&fixed, []).unwrap());
        let session = traced.debug(&mut oracle).unwrap();

        assert_eq!(pumped.result, session.outcome.result);
        assert_eq!(pumped.slices_taken, session.outcome.slices_taken);
        let p: Vec<&str> = pumped.transcript.iter().map(|t| t.query.as_str()).collect();
        let s: Vec<&str> = session
            .outcome
            .transcript
            .iter()
            .map(|t| t.query.as_str())
            .collect();
        assert_eq!(p, s, "handle pump must render the same transparent queries");

        // Provenance echo: engine and limits without re-deriving them.
        assert_eq!(session.engine(), Engine::default());
        assert_eq!(session.runs[0].engine, Engine::default());
        assert_eq!(session.limits().len(), 1);
        assert_eq!(
            session.limits()[0].max_steps,
            gadt_pascal::interp::Limits::default().max_steps
        );
    }

    #[test]
    fn compile_errors_carry_the_phase() {
        let err = Gadt::compile("program x; begin y := 1 end.").unwrap_err();
        assert_eq!(err.phase(), Phase::Compile);
        assert!(err.diagnostic().is_some());
    }

    #[test]
    fn debugging_without_runs_is_a_debug_phase_error() {
        let traced = Gadt::compile("program t; begin writeln(1) end.")
            .unwrap()
            .transform()
            .unwrap()
            .trace(vec![])
            .unwrap();
        let mut oracle = ChainOracle::new();
        let err = traced.debug(&mut oracle).unwrap_err();
        assert_eq!(err.phase(), Phase::Debug);
    }

    #[test]
    fn finish_returns_runs_and_journal() {
        let (runs, journal) = Gadt::compile("program t; begin writeln(7) end.")
            .unwrap()
            .transform()
            .unwrap()
            .trace(vec![vec![], vec![]])
            .unwrap()
            .finish();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].output, "7\n");
        assert_eq!(journal.counter("trace.runs"), 2);
        assert!(journal.phase_timings().trace > std::time::Duration::ZERO);
    }
}
