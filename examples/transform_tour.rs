//! A tour of the §6 program transformations: global variables to
//! parameters, global gotos to exit parameters, gotos out of loops to
//! leave flags — each shown before/after, plus the trace-instrumented
//! listing.
//!
//! ```sh
//! cargo run --example transform_tour
//! ```

use gadt_pascal::pretty::print_program;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_transform::{growth_factor, instrumented_source, transform};

fn show(title: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    let m = compile(src)?;
    let t = transform(&m)?;
    println!("=== {title} ===\n");
    println!("--- original ---\n{}", print_program(&m.program));
    println!("--- transformed ---\n{}", print_program(&t.module.program));
    println!(
        "growth factor: {:.2}× (the paper's §9: usually < 2×)\n",
        growth_factor(&m, &t)
    );
    // Differential check: identical behaviour.
    let o1 = gadt_pascal::interp::Interpreter::new(&m).run()?;
    let o2 = gadt_pascal::interp::Interpreter::new(&t.module).run()?;
    assert_eq!(o1.output_text(), o2.output_text());
    println!(
        "behaviour preserved: both print {:?}\n",
        o1.output_text().trim()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // §6 example 1: conversion of global variables to parameters.
    show(
        "Conversion of global variables to parameters (§6)",
        testprogs::SECTION6_GLOBALS,
    )?;

    // §6 example 2: breaking global gotos into structured local gotos.
    show(
        "Breaking global gotos into exit parameters (§6)",
        testprogs::SECTION6_GOTO,
    )?;

    // §6 example 3: gotos inside a loop addressed outside the loop.
    show(
        "Handling gotos out of a while loop (§6)",
        testprogs::SECTION6_LOOP_GOTO,
    )?;

    // The trace-generating actions of §6, rendered on the transformed
    // program (display only; actual tracing uses interpreter monitors).
    let m = compile(testprogs::SECTION6_GLOBALS)?;
    let t = transform(&m)?;
    println!("=== Trace-generating actions (§6, display form) ===\n");
    println!("{}", instrumented_source(&t));
    Ok(())
}
