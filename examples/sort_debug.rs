//! A realistic debugging scenario: a merge-style sorting program with a
//! planted off-by-one, debugged by the full GADT pipeline. Shows the
//! method scaling past the paper's toy example: the execution tree has
//! dozens of nodes, yet the combination of test lookup and slicing pins
//! the bug with a handful of queries.
//!
//! ```sh
//! cargo run --example sort_debug
//! ```

use gadt::debugger::{DebugConfig, DebugResult};
use gadt::oracle::{Answer, ChainOracle, CountingOracle, FnOracle, Oracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt_pascal::sema::{compile, Module};
use gadt_trace::{ExecTree, NodeId, NodeKind};

const SORTER: &str = "
program sorter;
const n = 8;
type arr = array[1..n] of integer;
var data: arr; i, checksum: integer;

procedure minindex(a: arr; from: integer; var at: integer);
var j: integer;
begin
  at := from;
  for j := from + 1 to n - 1 do  (* planted bug: should scan to n *)
    if a[j] < a[at] then at := j;
end;

procedure swap(var a: arr; i, j: integer);
var t: integer;
begin
  t := a[i]; a[i] := a[j]; a[j] := t;
end;

procedure selsort(var a: arr);
var i, at: integer;
begin
  for i := 1 to n - 1 do begin
    minindex(a, i, at);
    if a[at] < a[i] then swap(a, i, at);
  end;
end;

procedure checksorted(a: arr; var bad: integer);
var i: integer;
begin
  bad := 0;
  for i := 1 to n - 1 do
    if a[i] > a[i + 1] then bad := bad + 1;
end;

begin
  data[1] := 5; data[2] := 2; data[3] := 9; data[4] := 1;
  data[5] := 7; data[6] := 3; data[7] := 8; data[8] := 0;
  selsort(data);
  checksorted(data, checksum);
  for i := 1 to n do write(data[i], ' ');
  writeln;
  writeln('inversions: ', checksum);
end.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buggy = compile(SORTER)?;
    let fixed_src = SORTER.replace(
        "for j := from + 1 to n - 1 do  (* planted bug: should scan to n *)",
        "for j := from + 1 to n do",
    );
    let fixed = compile(&fixed_src)?;

    let prepared = prepare(&buggy)?;
    let run = run_traced(&prepared, [])?;
    println!("Buggy program output:\n{}", run.output);
    println!(
        "The execution tree has {} nodes — pure algorithmic debugging would \
         grind through most of them.\n",
        run.tree.len()
    );

    // The user wrote unit tests for swap and minindex… but the minindex
    // tests only covered `from = 1` (which is why the off-by-one
    // survived). Simulate that: the test database clears swap always and
    // minindex only on inputs it was tested with.
    let mut reference_for_db = ReferenceOracle::new(&fixed, [])?;
    let tested = FnOracle::new(
        "test database",
        move |m: &Module, t: &ExecTree, n: NodeId| {
            let node = t.node(n);
            if !matches!(node.kind, NodeKind::Call { .. }) {
                return Answer::DontKnow;
            }
            match node.name.as_str() {
                // swap has exhaustive tests.
                "swap" => reference_for_db.judge(m, t, n),
                _ => Answer::DontKnow,
            }
        },
    );

    let mut chain = ChainOracle::new();
    chain.push(tested);
    chain.push(CountingOracle::new(ReferenceOracle::new(&fixed, [])?));
    let outcome = debug(&prepared, &run, &mut chain, DebugConfig::default());

    println!("{}", outcome.render_transcript());
    println!(
        "user queries: {} of {} nodes; test database answered {}; slices: {}",
        outcome.queries_from("reference"),
        run.tree.len(),
        outcome.queries_from("test database"),
        outcome.slices_taken,
    );

    match &outcome.result {
        DebugResult::BugLocalized { unit, rendering } => {
            println!("\n=> bug inside `{unit}` ({rendering})");
        }
        DebugResult::NoBugFound => println!("=> no bug found"),
    }
    Ok(())
}
