//! Cross-session knowledge reuse: run the paper's §8 session with a
//! persistent knowledge store attached, then replay it in a "second
//! session" that answers every query from disk — zero questions reach
//! the simulated user the second time.
//!
//! ```sh
//! cargo run --example store_session
//! ```

use gadt_repro::debugging::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt_repro::store::TempDir;
use gadt_repro::{testprogs, DebugResult, Gadt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fixed = gadt_repro::pascal::sema::compile(testprogs::SQRTEST_FIXED)?;
    let dir = TempDir::new("store-session-example");

    // Session 1: the reference implementation simulates the user, and
    // the store records every definite judgement.
    println!("=== session 1: answered live, persisted to disk ===\n");
    let mut oracle = ChainOracle::new();
    oracle.push(CountingOracle::new(ReferenceOracle::new(&fixed, [])?));
    let session = Gadt::compile(testprogs::SQRTEST)?
        .with_store(dir.path())?
        .transform()?
        .trace(vec![vec![]])?
        .debug(&mut oracle)?;
    println!("{}", session.outcome.render_transcript());
    report(&session);

    // Session 2: a fresh pipeline over the same store. The stored
    // answers front-run every other oracle, so the "user" behind them
    // is never consulted.
    println!("\n=== session 2: replayed from the store ===\n");
    let mut oracle = ChainOracle::new();
    oracle.push(CountingOracle::new(ReferenceOracle::new(&fixed, [])?));
    let replay = Gadt::compile(testprogs::SQRTEST)?
        .with_store(dir.path())?
        .transform()?
        .trace(vec![vec![]])?
        .debug(&mut oracle)?;
    println!("{}", replay.outcome.render_transcript());
    report(&replay);

    assert!(matches!(
        &replay.outcome.result,
        DebugResult::BugLocalized { unit, .. } if unit == "decrement"
    ));
    assert_eq!(replay.outcome.queries_from("reference"), 0);
    assert_eq!(replay.journal.counter("store.misses"), 0);
    println!("\nreplay asked the user 0 questions — all answers came from disk");
    Ok(())
}

fn report(session: &gadt_repro::Session) {
    println!(
        "store: {} hits, {} misses ({} questions total)",
        session.journal.counter("store.hits"),
        session.journal.counter("store.misses"),
        session.outcome.total_queries(),
    );
}
