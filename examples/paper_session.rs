//! The paper's complete worked example (§8): the full GADT system —
//! algorithmic debugging + T-GEN test lookup + program slicing — on the
//! Figure 4 `sqrtest` program with the planted bug in `decrement`.
//!
//! Prints the Figure 7 execution tree, the Figure 8 and Figure 9 pruned
//! trees, and the interaction session, showing that the `arrsum` query is
//! answered by the test database and never shown to the user.
//!
//! ```sh
//! cargo run --example paper_session
//! ```

use gadt::debugger::{DebugConfig, DebugResult};
use gadt::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt::testlookup::TestLookup;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_tgen::{cases, frames, spec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buggy = compile(testprogs::SQRTEST)?;
    let fixed = compile(testprogs::SQRTEST_FIXED)?;

    // Phase I+II: transformation (a no-op for this program — it is
    // already side-effect free at the procedure level) and tracing.
    let prepared = prepare(&buggy)?;
    let run = run_traced(&prepared, [])?;

    println!("=== Figure 7: the execution tree ===\n");
    println!("{}", run.tree.render(run.tree.root));

    // Figures 8 and 9: the pruned trees the slicer produces.
    let module = &prepared.transformed.module;
    let computs = run
        .trace
        .calls
        .iter()
        .find(|c| module.proc(c.proc).name == "computs")
        .expect("computs call");
    let slice8 = dynamic_slice_output(module, &run.trace, computs.id, 0);
    let computs_node = run.tree.find_call(module, "computs").expect("node");
    let fig8 = run.tree.prune(computs_node, &slice8);
    println!("=== Figure 8: sliced on computs' first output (r1) ===\n");
    println!("{}", fig8.render(fig8.root));

    let ps = run
        .trace
        .calls
        .iter()
        .find(|c| module.proc(c.proc).name == "partialsums")
        .expect("partialsums call");
    let slice9 = dynamic_slice_output(module, &run.trace, ps.id, 1);
    let ps_node = run.tree.find_call(module, "partialsums").expect("node");
    let fig9 = run.tree.prune(ps_node, &slice9);
    println!("=== Figure 9: sliced on partialsums' second output (s2) ===\n");
    println!("{}", fig9.render(fig9.root));

    // §5.3.2: T-GEN spec for arrsum (Figure 1), frames, executable test
    // cases, and the report database.
    let s = spec::parse_spec(spec::ARRSUM_SPEC)?;
    let g = frames::generate_frames(&s, Default::default());
    println!("=== Figure 1's spec: generated frames and scripts ===\n");
    for f in &g.frames {
        println!("  frame {f}");
    }
    for script in g.scripts.keys() {
        let members: Vec<String> = g.script(script).iter().map(|f| f.to_string()).collect();
        println!("  {script}: {}", members.join(" "));
    }
    println!();

    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 2));
    let db = cases::run_cases(&buggy, "arrsum", &tc, &|ins, r| {
        cases::arrsum_oracle(ins, r)
    })?;
    println!(
        "Test report database for arrsum: {} report(s), all passing: {}\n",
        db.len(),
        db.iter().all(|(_, rs)| rs.iter().all(|r| r.passed))
    );
    let mut lookup = TestLookup::new();
    lookup.register("arrsum", db, Box::new(cases::arrsum_frame_selector));

    // Phase III: the GADT debugging session (§8 steps 1–5).
    let mut oracle = ChainOracle::new();
    oracle.push(lookup);
    oracle.push(CountingOracle::new(ReferenceOracle::new(&fixed, [])?));
    let outcome = debug(&prepared, &run, &mut oracle, DebugConfig::default());

    println!("=== The §8 interaction session ===\n");
    println!("{}", outcome.render_transcript());
    println!(
        "Slices taken: {} (the paper's steps 2 and 4)",
        outcome.slices_taken
    );
    println!(
        "Queries answered by the test database: {} (the arrsum query was \
         never shown to the user)",
        outcome.queries_from("test database")
    );
    println!(
        "Queries answered by the (simulated) user: {}",
        outcome.queries_from("reference")
    );

    assert!(matches!(
        outcome.result,
        DebugResult::BugLocalized { ref unit, .. } if unit == "decrement"
    ));
    Ok(())
}
