//! T-GEN walkthrough (§2): parse the Figure 1 specification, generate
//! test frames and scripts, instantiate executable test cases against a
//! full-size `arrsum`, run them, and query the report database the way
//! the debugger does (§5.3.2).
//!
//! ```sh
//! cargo run --example tgen_demo
//! ```

use gadt_pascal::sema::compile;
use gadt_pascal::value::Value;
use gadt_tgen::{cases, frames, spec};

/// A standalone arrsum with room for "more"-sized arrays.
const ARRSUM_100: &str = "
program arrsumdemo;
type intarray = array[1..100] of integer;
var a: intarray; b: integer;

procedure arrsum(a: intarray; n: integer; var b: integer);
var i: integer;
begin
  b := 0;
  for i := 1 to n do b := b + a[i];
end;

begin
  arrsum(a, 0, b);
end.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The Figure 1 specification.
    let s = spec::parse_spec(spec::ARRSUM_SPEC)?;
    println!("Specification for unit `{}`:", s.unit);
    for c in &s.categories {
        let names: Vec<&str> = c.choices.iter().map(|ch| ch.name.as_str()).collect();
        println!("  category {}: {}", c.name, names.join(", "));
    }
    println!();

    // 2. Frame generation.
    let g = frames::generate_frames(&s, Default::default());
    println!("{} frames generated:", g.frames.len());
    for f in &g.frames {
        println!("  {f}    [{}]", f.code());
    }
    println!();
    for script in g.scripts.keys() {
        let members: Vec<String> = g.script(script).iter().map(|f| f.to_string()).collect();
        println!("{script}: {}", members.join(", "));
    }
    println!();

    // 3. Executable test cases (capacity 100 realizes every frame).
    let tc = cases::instantiate_cases(&g, |f| cases::arrsum_instantiator(f, 100));
    println!("{} executable test cases:", tc.len());
    for c in &tc {
        let shown: Vec<String> = c.inputs.iter().take(2).map(|v| v.to_string()).collect();
        println!(
            "  {}: n = {}, a = {}…",
            c.code,
            c.inputs[1],
            shown[0].chars().take(40).collect::<String>()
        );
    }
    println!();

    // 4. Run them and build the report database.
    let m = compile(ARRSUM_100)?;
    let db = cases::run_cases(&m, "arrsum", &tc, &|ins, run| {
        cases::arrsum_oracle(ins, run)
    })?;
    println!("Test report database ({} reports):", db.len());
    for (code, reports) in db.iter() {
        for r in reports {
            println!(
                "  {code}: inputs n={} → outputs {:?} → {}",
                r.inputs[1],
                r.outputs.iter().map(|v| v.to_string()).collect::<Vec<_>>(),
                if r.passed { "PASS" } else { "FAIL" }
            );
        }
    }
    println!();

    // 5. Debug-time lookup: classify a concrete call and query the DB.
    let query_inputs = vec![
        {
            let mut elems = vec![0i64; 100];
            elems[0] = 1;
            elems[1] = 2;
            Value::from(elems)
        },
        Value::Int(2),
        Value::Int(0),
    ];
    let code = cases::arrsum_frame_selector(&query_inputs).expect("classifiable");
    println!("The §8 query arrsum(In [1,2,…], In 2, Out 3) classifies as frame `{code}`");
    match db.frame_verdict(&code) {
        Some(true) => println!("→ frame has a good test report: the debugger skips arrsum."),
        Some(false) => println!("→ frame has a failing report: debugging continues inside."),
        None => println!("→ frame untested: the user must answer."),
    }
    println!();

    // 6. The §5.3.2 fallback for units without a selector function: the
    // user picks the frame from a menu (scripted answers here).
    use std::io::Cursor;
    let mut menu_shown = Vec::new();
    let picked = gadt_tgen::menu::select_frame(
        &s,
        Cursor::new(
            &b"4
1
2
"[..],
        ),
        &mut menu_shown,
        Default::default(),
    );
    println!("Menu-based selection (answers: 4, 1, 2):");
    print!("{}", String::from_utf8_lossy(&menu_shown));
    println!(
        "→ selected frame: {}",
        picked.as_deref().unwrap_or("(aborted)")
    );
    Ok(())
}
