//! Debug the paper's `sqrtest` program interactively: *you* are the
//! oracle. Answer `yes`, `no`, `no K` (error on output variable K —
//! activates slicing), or `skip`.
//!
//! Hint: the planted bug is in `decrement` (it computes `y + 1` instead
//! of `y - 1`), so `decrement(In y: 3) = 4` deserves a `no`.
//!
//! ```sh
//! cargo run --example interactive_debug
//! ```

use gadt::debugger::DebugConfig;
use gadt::interactive::InteractiveOracle;
use gadt::oracle::ChainOracle;
use gadt::session::{debug, prepare, run_traced};
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use std::io::{stdin, stdout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let buggy = compile(testprogs::SQRTEST)?;
    let prepared = prepare(&buggy)?;
    let run = run_traced(&prepared, [])?;

    println!("The program computes the square of the sum of [1,2] in two");
    println!("ways and compares them; it printed isok = false, so there");
    println!("is a bug. Answer the queries (yes / no / no K / skip):\n");

    let outcome;
    {
        let mut oracle = ChainOracle::new();
        oracle.push(InteractiveOracle::new(stdin().lock(), stdout()));
        outcome = debug(&prepared, &run, &mut oracle, DebugConfig::default());
    }

    println!("\n{}", outcome.render_transcript());
    Ok(())
}
