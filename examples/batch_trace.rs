//! Batch tracing through the parallel engine: trace many inputs of one
//! program concurrently, get execution trees back in input order, and
//! read the phase timings (the paper's Figure 3 phases).
//!
//! Usage: `cargo run --example batch_trace [threads]` — `0` (default)
//! means "use all cores".

use gadt::session::trace_batch;
use gadt_pascal::sema::compile;
use gadt_pascal::value::Value;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads: usize = match std::env::args().nth(1) {
        Some(a) => a
            .parse()
            .map_err(|_| format!("invalid thread count `{a}` (expected a number)"))?,
        None => 0,
    };

    let m = compile(
        "program t; var n, i, s: integer;
         begin read(n); s := 0; for i := 1 to n do s := s + i; writeln(s) end.",
    )?;
    let inputs: Vec<Vec<Value>> = (1..=32).map(|n| vec![Value::Int(n)]).collect();
    let batch = trace_batch(&m, inputs, threads)?;

    println!(
        "traced {} runs on {threads} thread(s) (0 = all cores)",
        batch.runs.len()
    );
    for (i, run) in batch.runs.iter().enumerate().step_by(8) {
        println!(
            "  input {:2} -> output {:>4}  ({} trace events)",
            i + 1,
            run.output.trim(),
            run.trace.events.len()
        );
    }
    println!("{}", batch.timings);
    Ok(())
}
