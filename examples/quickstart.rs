//! Quickstart: compile a Pascal program, run it, inspect its execution
//! tree, and localize a planted bug with the GADT debugger.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gadt::debugger::{DebugConfig, DebugResult};
use gadt::oracle::{ChainOracle, CountingOracle, ReferenceOracle};
use gadt::session::{debug, prepare, run_traced};
use gadt_pascal::sema::compile;

const BUGGY: &str = "
program demo;
var total: integer;

procedure square(x: integer; var r: integer);
begin
  r := x * x;
end;

procedure sumsquares(n: integer; var s: integer);
var i, sq: integer;
begin
  s := 0;
  for i := 1 to n do begin
    square(i, sq);
    s := s + sq + 1;  (* planted bug: should be s + sq *)
  end;
end;

begin
  sumsquares(4, total);
  writeln(total);
end.
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile and run.
    let buggy = compile(BUGGY)?;
    let fixed_src = BUGGY.replace(
        "s + sq + 1;  (* planted bug: should be s + sq *)",
        "s + sq;",
    );
    let fixed = compile(&fixed_src)?;

    let prepared = prepare(&buggy)?;
    let run = run_traced(&prepared, [])?;
    println!("Program output: {}", run.output.trim());
    println!("(1² + 2² + 3² + 4² = 30, so 34 is wrong.)\n");

    // 2. The execution tree (paper §5.2, Figure 7 style).
    println!("Execution tree:");
    println!("{}", run.tree.render(run.tree.root));

    // 3. Algorithmic debugging. The fixed program simulates the user.
    let mut oracle = ChainOracle::new();
    oracle.push(CountingOracle::new(ReferenceOracle::new(&fixed, [])?));
    let outcome = debug(&prepared, &run, &mut oracle, DebugConfig::default());

    println!("Debugging session:");
    println!("{}", outcome.render_transcript());

    match &outcome.result {
        DebugResult::BugLocalized { unit, rendering } => {
            println!("=> bug inside `{unit}`, first seen as {rendering}");
        }
        DebugResult::NoBugFound => println!("=> no bug found"),
    }
    Ok(())
}
