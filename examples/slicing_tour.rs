//! A tour of program slicing (paper §4 and §7).
//!
//! * Reproduces Figure 2: the static slice of program `p` on variable
//!   `mul` at the last line, printed as a program.
//! * Shows the §7 scenario (Figures 5–6): dynamic slicing removes calls
//!   that execute before the relevant one but cannot affect it.
//!
//! ```sh
//! cargo run --example slicing_tour
//! ```

use gadt_analysis::dyntrace::record_trace;
use gadt_analysis::slice_dynamic::dynamic_slice_output;
use gadt_analysis::slice_static::{static_slice, SliceContext, SliceCriterion};
use gadt_pascal::cfg::lower;
use gadt_pascal::pretty::{print_program, print_slice};
use gadt_pascal::sema::compile;
use gadt_pascal::testprogs;
use gadt_trace::build_tree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------
    // Figure 2: static slicing.
    // ------------------------------------------------------------
    let m = compile(testprogs::FIGURE2)?;
    println!("=== Figure 2(a): the original program ===\n");
    println!("{}", print_program(&m.program));

    let cfg = lower(&m);
    let cx = SliceContext::new(&m, &cfg);
    let criterion = SliceCriterion::at_program_end(&m, "mul").expect("mul is a global");
    let slice = static_slice(&cx, &criterion);
    println!("=== Figure 2(b): the slice on `mul` at the last line ===\n");
    println!("{}", print_slice(&m.program, &slice.stmts));
    println!(
        "({} of {} statements remain in the slice.)\n",
        slice.len(),
        m.program.stmt_count()
    );

    // The slice is executable and preserves `mul` — run both.
    let sliced = compile(&print_slice(&m.program, &slice.stmts))?;
    for input in [vec![1_i64, 5], vec![3, 5, 7]] {
        let mut i1 = gadt_pascal::interp::Interpreter::new(&m);
        i1.set_input(input.iter().map(|&n| gadt_pascal::value::Value::Int(n)));
        let o1 = i1.run()?;
        let mut i2 = gadt_pascal::interp::Interpreter::new(&sliced);
        i2.set_input(input.iter().map(|&n| gadt_pascal::value::Value::Int(n)));
        let o2 = i2.run()?;
        println!(
            "input {:?}: original mul = {}, slice mul = {}",
            input,
            o1.global("mul").unwrap(),
            o2.global("mul").unwrap()
        );
        assert_eq!(o1.global("mul"), o2.global("mul"));
    }
    println!();

    // ------------------------------------------------------------
    // §7 (Figures 5–6): dynamic slicing prunes irrelevant calls.
    // ------------------------------------------------------------
    let m5 = compile(testprogs::FIGURE5)?;
    let cfg5 = lower(&m5);
    let trace = record_trace(&m5, &cfg5, [])?;
    let tree = build_tree(&m5, &trace);
    println!("=== Figure 6: the execution tree of the Figure 5 program ===\n");
    println!("{}", tree.render(tree.root));

    let pn = trace
        .calls
        .iter()
        .find(|c| m5.proc(c.proc).name == "pn")
        .expect("pn call");
    let slice = dynamic_slice_output(&m5, &trace, pn.id, 0);
    let root = tree.root;
    let pruned = tree.prune(root, &slice);
    println!("=== After slicing on pn's output y: p1..p3 disappear ===\n");
    println!("{}", pruned.render(pruned.root));
    Ok(())
}
